package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one float counter, one gauge
// and one timing from many goroutines; totals must be exact (run under
// -race as part of tier-1).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.counter")
			f := r.FloatCounter("test.float")
			g := r.Gauge("test.gauge")
			tm := r.Timing("test.timing")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				f.Add(0.5)
				g.Add(1)
				tm.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	const total = workers * perWorker
	if got := r.Counter("test.counter").Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.FloatCounter("test.float").Value(); got != total/2 {
		t.Errorf("float counter = %g, want %d", got, total/2)
	}
	if got := r.Gauge("test.gauge").Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	ts := r.Timing("test.timing").Snapshot()
	if ts.Count != total || ts.Sum != total*time.Millisecond {
		t.Errorf("timing count=%d sum=%v, want count=%d sum=%v", ts.Count, ts.Sum, total, total*time.Millisecond)
	}
	if ts.Min != time.Millisecond || ts.Max != time.Millisecond {
		t.Errorf("timing min=%v max=%v, want 1ms/1ms", ts.Min, ts.Max)
	}
}

// TestHandleInterning: the same name returns the same handle, so cached
// handles and ad-hoc lookups observe one metric.
func TestHandleInterning(t *testing.T) {
	r := New()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("Counter(x) returned two different handles")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("increment through one handle not visible through the other")
	}
}

// TestTimingSnapshotConsistency: every snapshot taken while writers are
// running must have sum == count * 1ms exactly — count and sum move under one
// lock, so a torn (count bumped, sum not) snapshot can never be observed.
func TestTimingSnapshotConsistency(t *testing.T) {
	r := New()
	tm := r.Timing("t")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tm.Observe(time.Millisecond)
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		s := tm.Snapshot()
		if s.Sum != time.Duration(s.Count)*time.Millisecond {
			t.Fatalf("torn snapshot: count=%d sum=%v", s.Count, s.Sum)
		}
		var bucketTotal int64
		for _, b := range s.Buckets {
			bucketTotal += b
		}
		if bucketTotal != s.Count {
			t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRegistrySnapshotAndText: a snapshot holds every registered metric, and
// the text dump is sorted and parseable.
func TestRegistrySnapshotAndText(t *testing.T) {
	r := New()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.FloatCounter("c.units").Add(1.5)
	r.Gauge("d.gauge").Set(7)
	r.Timing("e.lat").Observe(2 * time.Millisecond)

	s := r.Snapshot()
	if s.Counters["a.count"] != 1 || s.Counters["b.count"] != 2 {
		t.Errorf("counters snapshot = %v", s.Counters)
	}
	if s.FloatCounters["c.units"] != 1.5 {
		t.Errorf("float snapshot = %v", s.FloatCounters)
	}
	if s.Gauges["d.gauge"] != 7 {
		t.Errorf("gauge snapshot = %v", s.Gauges)
	}
	if s.Timings["e.lat"].Count != 1 {
		t.Errorf("timing snapshot = %+v", s.Timings["e.lat"])
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("text dump has %d lines, want 5:\n%s", len(lines), sb.String())
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("text dump not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	if lines[0] != "a.count 1" {
		t.Errorf("first line = %q, want \"a.count 1\"", lines[0])
	}
}

// TestConcurrentRegistryLookups races metric creation against Snapshot; run
// under -race.
func TestConcurrentRegistryLookups(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"m.a", "m.b", "m.c", "m.d"}
			for i := 0; i < 500; i++ {
				r.Counter(names[(i+w)%len(names)]).Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, name := range []string{"m.a", "m.b", "m.c", "m.d"} {
		total += r.Counter(name).Value()
	}
	if total != 8*500 {
		t.Errorf("total increments = %d, want %d", total, 8*500)
	}
}
