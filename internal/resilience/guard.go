package resilience

import (
	"context"
	"hash/fnv"
	"strings"
	"time"

	"autostats/internal/obs"
	"autostats/internal/stats"
)

// GuardConfig parameterizes a Guard.
type GuardConfig struct {
	// Retry is the per-operation retry policy. The zero value means
	// DefaultRetry (seeded from Seed). Retry.Seed is ignored: the Guard
	// derives a per-table seed from Seed so concurrent tables get
	// independent but reproducible jitter streams.
	Retry Retry
	// Breaker configures the per-table circuit breakers.
	Breaker BreakerConfig
	// BuildTimeout bounds each individual build/refresh attempt; the
	// deadline is layered under the caller's context. Zero disables the
	// per-attempt bound (the caller's context still applies).
	BuildTimeout time.Duration
	// Seed drives all deterministic jitter in the Guard.
	Seed int64
}

// Guard wraps a stats.Manager with the resilience stack: every build or
// refresh goes through the table's circuit breaker, is retried per the
// policy on transient failure, and is individually bounded by BuildTimeout.
// A statistic the Guard cannot provide comes back with a classifiable error
// (BreakerOpenError, context.DeadlineExceeded, the transient wrapper) that
// the degraded-mode planner maps to a magic-number fallback — the query
// never fails because its statistics infrastructure did.
//
// Reads are unaffected: the Guard only fronts mutating operations. It is
// safe for concurrent use.
type Guard struct {
	mgr      *stats.Manager
	cfg      GuardConfig
	breakers *BreakerSet
	reg      *obs.Registry
}

// NewGuard wraps mgr. Observability goes to the manager's registry.
func NewGuard(mgr *stats.Manager, cfg GuardConfig) *Guard {
	reg := mgr.ObsRegistry()
	if cfg.Retry.MaxAttempts == 0 && cfg.Retry.BaseDelay == 0 {
		cfg.Retry = DefaultRetry(cfg.Seed)
	}
	return &Guard{
		mgr:      mgr,
		cfg:      cfg,
		breakers: NewBreakerSet(cfg.Breaker, reg),
		reg:      reg,
	}
}

// Manager returns the wrapped statistics manager.
func (g *Guard) Manager() *stats.Manager { return g.mgr }

// Breakers exposes the per-table breaker set for inspection and reporting.
func (g *Guard) Breakers() *BreakerSet { return g.breakers }

// retryFor builds the table's retry policy: the shared policy with a seed
// derived from (Seed, table), so each table's jitter stream is independent
// yet reproducible, and with the obs hook attached.
func (g *Guard) retryFor(table string) Retry {
	r := g.cfg.Retry
	h := fnv.New64a()
	h.Write([]byte(table))
	r.Seed = g.cfg.Seed ^ int64(h.Sum64())
	attempts := g.reg.Counter("resilience.retry.attempts")
	r.OnRetry = func(int, error, time.Duration) { attempts.Inc() }
	return r
}

// attempt runs op once under the per-attempt BuildTimeout. An attempt that
// ran out of its own budget (deadline exceeded with the caller's context
// still live) is reclassified transient so the retry policy gives the build
// another chance; exceeding the caller's deadline propagates untouched.
func (g *Guard) attempt(ctx context.Context, op func(ctx context.Context) error) error {
	actx := ctx
	if g.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, g.cfg.BuildTimeout)
		defer cancel()
	}
	err := op(actx)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		err = stats.Transient(err)
	}
	return err
}

// EnsureCtx is stats.Manager.EnsureCtx behind the resilience stack. An
// already-existing (or resurrectable) statistic is returned directly — the
// breaker only gates physical builds. It satisfies the optimizer core's
// StatBuilder seam.
func (g *Guard) EnsureCtx(ctx context.Context, table string, cols []string) (*stats.Statistic, bool, error) {
	id := stats.MakeID(table, cols)
	if g.mgr.Has(id) {
		return g.mgr.EnsureCtx(ctx, table, cols)
	}
	key := strings.ToLower(table)
	b := g.breakers.For(key)
	if !b.Allow() {
		g.breakers.Reject()
		g.reg.Counter("resilience.ensure.failures").Inc()
		return nil, false, &BreakerOpenError{Table: key}
	}
	var (
		st    *stats.Statistic
		built bool
	)
	err := g.retryFor(key).Do(ctx, func(ctx context.Context) error {
		return g.attempt(ctx, func(ctx context.Context) error {
			var aerr error
			st, built, aerr = g.mgr.EnsureCtx(ctx, table, cols)
			return aerr
		})
	})
	g.settle(ctx, key, err)
	if err != nil {
		g.reg.Counter("resilience.ensure.failures").Inc()
		return nil, false, err
	}
	return st, built, nil
}

// RefreshCtx is stats.Manager.RefreshCtx behind the resilience stack.
func (g *Guard) RefreshCtx(ctx context.Context, id stats.ID) error {
	key := id.Table()
	b := g.breakers.For(key)
	if !b.Allow() {
		g.breakers.Reject()
		g.reg.Counter("resilience.refresh.failures").Inc()
		return &BreakerOpenError{Table: key}
	}
	err := g.retryFor(key).Do(ctx, func(ctx context.Context) error {
		return g.attempt(ctx, func(ctx context.Context) error {
			return g.mgr.RefreshCtx(ctx, id)
		})
	})
	g.settle(ctx, key, err)
	if err != nil {
		g.reg.Counter("resilience.refresh.failures").Inc()
	}
	return err
}

// settle resolves one gated operation's outcome on the table's breaker.
// Caller cancellation — including the caller's own deadline expiring — is not
// a table-health signal: the probe (if any) is released without a verdict
// rather than counted as a failure. Only failures with the caller still live
// (including per-attempt BuildTimeout exhaustion) indict the table.
func (g *Guard) settle(ctx context.Context, table string, err error) {
	switch {
	case err == nil:
		g.breakers.For(table).Success()
	case ctx.Err() != nil || Reason(err) == "canceled":
		g.breakers.For(table).ReleaseProbe()
	default:
		g.breakers.Failure(table, err)
	}
}

// MaintainCtx runs one maintenance pass through the resilience stack:
// tables with an open breaker are skipped (counted in the report), other
// failures are tolerated per-table instead of aborting the pass, and every
// outcome feeds the table's breaker — a recovered table closes its breaker
// on the first successful maintenance refresh.
func (g *Guard) MaintainCtx(ctx context.Context, p stats.MaintenancePolicy) (stats.MaintenanceReport, error) {
	p.TolerateFailures = true
	prevSkip := p.SkipTable
	admitted := make(map[string]bool)
	p.SkipTable = func(table string) bool {
		if prevSkip != nil && prevSkip(table) {
			return true
		}
		key := strings.ToLower(table)
		if admitted[key] {
			return false
		}
		if !g.breakers.For(key).Allow() {
			g.breakers.Reject()
			return true
		}
		admitted[key] = true
		return false
	}
	rep, err := g.mgr.RunMaintenanceCtx(ctx, p)

	failed := make(map[string]error, len(rep.RefreshFailures))
	for _, f := range rep.RefreshFailures {
		failed[f.Table] = f.Err
	}
	refreshed := make(map[string]bool, len(rep.RefreshedTables))
	for _, t := range rep.RefreshedTables {
		refreshed[t] = true
	}
	for key := range admitted {
		switch {
		case failed[key] != nil:
			g.settle(ctx, key, failed[key])
		case refreshed[key]:
			g.breakers.For(key).Success()
		default:
			// Admitted but neither refreshed nor failed: the pass was cut
			// short (cancellation) or the table had nothing to rebuild.
			// Release any half-open probe without a verdict.
			g.breakers.For(key).ReleaseProbe()
		}
	}
	return rep, err
}
