package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

func testManager(t *testing.T) *stats.Manager {
	t.Helper()
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("t",
		catalog.Column{Name: "a", Type: catalog.Int},
		catalog.Column{Name: "b", Type: catalog.Int},
	)); err != nil {
		t.Fatal(err)
	}
	db, err := storage.NewDatabase("db", schema)
	if err != nil {
		t.Fatal(err)
	}
	td, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := td.Insert(storage.Row{catalog.NewInt(int64(i % 10)), catalog.NewInt(int64(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	m := stats.NewManager(db, histogram.MaxDiff, 0)
	m.SetObsRegistry(obs.New())
	return m
}

func fastGuard(mgr *stats.Manager, cfg GuardConfig) *Guard {
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = Retry{MaxAttempts: 3}
	}
	cfg.Retry.Sleep = noSleep
	return NewGuard(mgr, cfg)
}

func TestGuardRetriesTransientBuild(t *testing.T) {
	mgr := testManager(t)
	fails := 2
	mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		if fails > 0 {
			fails--
			return stats.Transient(errors.New("injected"))
		}
		return nil
	})
	g := fastGuard(mgr, GuardConfig{})
	st, built, err := g.EnsureCtx(context.Background(), "t", []string{"a"})
	if err != nil || !built || st == nil {
		t.Fatalf("EnsureCtx after transient failures: st=%v built=%v err=%v", st, built, err)
	}
	reg := mgr.ObsRegistry()
	if got := reg.Counter("resilience.retry.attempts").Value(); got != 2 {
		t.Errorf("retry attempts counter = %d, want 2", got)
	}
	if got := g.Breakers().For("t").State(); got != Closed {
		t.Errorf("breaker state after recovery = %v", got)
	}
	// Existing statistics bypass the breaker entirely.
	mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		return errors.New("must not be reached for existing stats")
	})
	if _, _, err := g.EnsureCtx(context.Background(), "t", []string{"a"}); err != nil {
		t.Errorf("existing statistic must pass through: %v", err)
	}
}

func TestGuardBreakerOpensAndRejects(t *testing.T) {
	mgr := testManager(t)
	calls := 0
	mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		calls++
		return errors.New("permanent")
	})
	g := fastGuard(mgr, GuardConfig{
		Retry:   Retry{MaxAttempts: 1},
		Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, err := g.EnsureCtx(ctx, "t", []string{"a"}); err == nil {
			t.Fatalf("build %d should fail", i)
		}
	}
	callsBefore := calls
	_, _, err := g.EnsureCtx(ctx, "t", []string{"a"})
	if !IsBreakerOpen(err) {
		t.Fatalf("third build: err=%v, want BreakerOpenError", err)
	}
	if calls != callsBefore {
		t.Error("open breaker must reject without touching the build path")
	}
	reg := mgr.ObsRegistry()
	if got := reg.Counter("resilience.breaker.rejects").Value(); got != 1 {
		t.Errorf("rejects counter = %d, want 1", got)
	}
	// The rejected call also counts as an ensure failure for the caller.
	if got := reg.Counter("resilience.ensure.failures").Value(); got != 3 {
		t.Errorf("ensure failures counter = %d, want 3", got)
	}
}

func TestGuardBuildTimeoutIsTransientAndReported(t *testing.T) {
	mgr := testManager(t)
	attempts := 0
	mgr.SetFailpoint(func(ctx context.Context, _ string, _ stats.ID) error {
		attempts++
		<-ctx.Done() // stall until the per-attempt deadline fires
		return ctx.Err()
	})
	g := fastGuard(mgr, GuardConfig{
		Retry:        Retry{MaxAttempts: 2},
		BuildTimeout: 2 * time.Millisecond,
	})
	_, _, err := g.EnsureCtx(context.Background(), "t", []string{"a"})
	if err == nil {
		t.Fatal("stalled build must fail")
	}
	if Reason(err) != "timeout" {
		t.Errorf("Reason = %q, want timeout (err=%v)", Reason(err), err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d — per-attempt timeout must be retryable while the caller ctx is live", attempts)
	}
}

func TestGuardCallerCancellationDoesNotFeedBreaker(t *testing.T) {
	mgr := testManager(t)
	mgr.SetFailpoint(func(ctx context.Context, _ string, _ stats.ID) error {
		<-ctx.Done()
		return ctx.Err()
	})
	g := fastGuard(mgr, GuardConfig{Breaker: BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, _, err := g.EnsureCtx(ctx, "t", []string{"a"})
	if err == nil {
		t.Fatal("canceled build must fail")
	}
	b := g.Breakers().For("t")
	if b.State() != Closed || b.Trips() != 0 {
		t.Errorf("caller cancellation fed the breaker: state=%v trips=%d", b.State(), b.Trips())
	}
}

func TestGuardRefreshCtx(t *testing.T) {
	mgr := testManager(t)
	st, err := mgr.Create("t", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	g := fastGuard(mgr, GuardConfig{Breaker: BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}})
	if err := g.RefreshCtx(context.Background(), st.ID); err != nil {
		t.Fatalf("healthy refresh: %v", err)
	}
	mgr.SetFailpoint(func(context.Context, string, stats.ID) error {
		return errors.New("permanent")
	})
	if err := g.RefreshCtx(context.Background(), st.ID); err == nil {
		t.Fatal("failing refresh must error")
	}
	if err := g.RefreshCtx(context.Background(), st.ID); !IsBreakerOpen(err) {
		t.Fatalf("tripped table must reject refreshes too, got %v", err)
	}
	// One real failure plus one breaker rejection.
	if got := mgr.ObsRegistry().Counter("resilience.refresh.failures").Value(); got != 2 {
		t.Errorf("refresh failures counter = %d, want 2", got)
	}
}
