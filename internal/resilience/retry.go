// Package resilience hardens the automated statistics pipeline against the
// failure modes a production optimizer must absorb: statistic builds that fail
// transiently, build paths that hang, and tables whose statistics
// infrastructure is persistently broken. It supplies three composable layers —
// a deterministic retry/backoff policy, per-table circuit breakers, and a
// Guard that wraps the stats.Manager with both plus per-build timeouts — and
// feeds the optimizer's degraded-mode planning: when a statistic cannot be
// provided, the query still plans and runs, falling back to the paper's
// default magic-number selectivities (§4, §6) for exactly the affected
// predicates instead of failing.
package resilience

import (
	"context"
	"math/rand"
	"time"

	"autostats/internal/stats"
)

// Retry is a capped-exponential-backoff retry policy. Only failures
// classified transient (stats.IsTransient) are retried; permanent failures
// and context cancellation propagate immediately. The jitter stream is
// seeded, so a given (policy, Seed) pair always produces the same backoff
// schedule — reruns of a failure scenario are reproducible.
//
// The zero value performs a single attempt with no retries.
type Retry struct {
	// MaxAttempts bounds total attempts, including the first; values <= 1
	// mean no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps each backoff after multiplication; <= 0 means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries; values < 1 are treated
	// as 2 (the conventional doubling).
	Multiplier float64
	// JitterFrac randomizes each backoff within ±JitterFrac of itself
	// (clamped to [0, 1]). Zero disables jitter.
	JitterFrac float64
	// Seed drives the deterministic jitter stream.
	Seed int64
	// Sleep, when non-nil, replaces the context-aware sleep between
	// attempts. Tests inject a recorder to assert schedules without waiting.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes each retry decision: the attempt
	// number that just failed (1-based), its error, and the backoff chosen.
	// The Guard wires obs counters here.
	OnRetry func(attempt int, err error, backoff time.Duration)
}

// DefaultRetry is a modest production-shaped policy: 3 attempts, 10ms base
// doubling to a 250ms cap, 25% jitter.
func DefaultRetry(seed int64) Retry {
	return Retry{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.25,
		Seed:        seed,
	}
}

// Schedule returns the backoff delays the policy would use between attempts
// (length max(MaxAttempts-1, 0)). It is a pure function of the policy fields
// including Seed: two calls on equal policies return equal schedules, which
// is the determinism contract Do inherits.
func (r Retry) Schedule() []time.Duration {
	n := r.MaxAttempts - 1
	if n <= 0 {
		return nil
	}
	mult := r.Multiplier
	if mult < 1 {
		mult = 2
	}
	jit := r.JitterFrac
	if jit < 0 {
		jit = 0
	}
	if jit > 1 {
		jit = 1
	}
	rng := rand.New(rand.NewSource(r.Seed))
	out := make([]time.Duration, n)
	d := float64(r.BaseDelay)
	for i := 0; i < n; i++ {
		b := d
		if r.MaxDelay > 0 && b > float64(r.MaxDelay) {
			b = float64(r.MaxDelay)
		}
		if jit > 0 {
			// Uniform in [b·(1−jit), b·(1+jit)]; one rng draw per slot keeps
			// the schedule a stable function of (policy, Seed).
			b *= 1 - jit + 2*jit*rng.Float64()
		}
		if b < 0 {
			b = 0
		}
		out[i] = time.Duration(b)
		d *= mult
	}
	return out
}

// Do runs fn, retrying transient failures per the policy. The backoff
// schedule is computed once up front (see Schedule); between attempts Do
// sleeps context-aware, so cancellation cuts a backoff short and returns
// ctx.Err(). Non-transient errors, context errors, and exhaustion all return
// the last error from fn (the transient wrapper intact, so callers can still
// classify).
func (r Retry) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	sched := r.Schedule()
	sleep := r.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	var err error
	for attempt := 0; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		err = fn(ctx)
		if err == nil {
			return nil
		}
		if !stats.IsTransient(err) || attempt >= len(sched) {
			return err
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt+1, err, sched[attempt])
		}
		if serr := sleep(ctx, sched[attempt]); serr != nil {
			return err
		}
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
