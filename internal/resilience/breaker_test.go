package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"autostats/internal/obs"
	"autostats/internal/stats"
)

// fakeClock is a manually advanced time source for cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Now:              clk.now,
	}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if tripped := b.Failure(); tripped {
			t.Fatalf("failure %d tripped below threshold", i+1)
		}
		if !b.Allow() {
			t.Fatalf("breaker rejected while closed after %d failures", i+1)
		}
	}
	if !b.Failure() {
		t.Fatal("third failure must trip")
	}
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after trip", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown must reject")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Minute)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("success must reset the consecutive-failure streak")
	}
	if !b.Failure() {
		t.Fatal("third consecutive failure after reset must trip")
	}
}

func TestBreakerHalfOpenProbeDiscipline(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: breaker must admit a half-open probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state=%v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}

	// Failed probe re-trips and restarts the cooldown.
	if !b.Failure() {
		t.Fatal("failed half-open probe must trip")
	}
	if b.Allow() {
		t.Fatal("re-tripped breaker admitted without a fresh cooldown")
	}

	// Successful probe closes.
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: probe must be admitted")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state=%v after successful probe, want closed", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker must admit freely")
	}
}

func TestBreakerReleaseProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Minute)
	b.Failure()
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	// The probe was canceled: no verdict. The next caller becomes the probe.
	b.ReleaseProbe()
	if b.State() != HalfOpen {
		t.Fatalf("state=%v after release, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("released probe slot must admit a fresh probe")
	}
	if b.Allow() {
		t.Fatal("only one probe at a time")
	}
}

func TestBreakerConcurrent(t *testing.T) {
	b, _ := testBreaker(5, time.Nanosecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != Closed && s != HalfOpen && s != Open {
		t.Fatalf("invalid state %v after concurrent churn", s)
	}
}

func TestBreakerSetObservability(t *testing.T) {
	reg := obs.New()
	set := NewBreakerSet(BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}, reg)

	set.Failure("orders", stats.Transient(errors.New("x")))
	if got := reg.Counter("resilience.breaker.trips").Value(); got != 0 {
		t.Fatalf("trip counter before threshold = %d", got)
	}
	if !set.Failure("orders", stats.Transient(errors.New("x"))) {
		t.Fatal("second failure must trip")
	}
	if got := reg.Counter("resilience.breaker.trips").Value(); got != 1 {
		t.Errorf("trips counter = %d, want 1", got)
	}
	if got := reg.Counter("resilience.breaker.trips.transient").Value(); got != 1 {
		t.Errorf("cause-attributed trips counter = %d, want 1", got)
	}
	if got := reg.Gauge("resilience.breaker.open").Value(); got != 1 {
		t.Errorf("open gauge = %d, want 1", got)
	}
	if got := reg.Gauge("resilience.breaker.state.orders").Value(); got != int64(Open) {
		t.Errorf("state gauge = %d, want %d", got, Open)
	}
	set.Reject()
	if got := reg.Counter("resilience.breaker.rejects").Value(); got != 1 {
		t.Errorf("rejects counter = %d, want 1", got)
	}

	set.For("orders").Success()
	if got := reg.Gauge("resilience.breaker.open").Value(); got != 0 {
		t.Errorf("open gauge after recovery = %d, want 0", got)
	}
	states := set.States()
	if len(states) != 1 || states[0].Table != "orders" || states[0].State != Closed || states[0].Trips != 1 {
		t.Errorf("States() = %+v", states)
	}
}

func TestReasonClassification(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&BreakerOpenError{Table: "t"}, "breaker-open"},
		{context.DeadlineExceeded, "timeout"},
		{context.Canceled, "canceled"},
		// A timed-out attempt reclassified transient for the retry layer must
		// still REPORT as a timeout: the deadline check wins.
		{stats.Transient(context.DeadlineExceeded), "timeout"},
		{stats.Transient(errors.New("x")), "transient"},
		{errors.New("x"), "error"},
	}
	for _, c := range cases {
		if got := Reason(c.err); got != c.want {
			t.Errorf("Reason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
