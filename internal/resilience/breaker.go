package resilience

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"autostats/internal/obs"
	"autostats/internal/stats"
)

// State is a circuit breaker state.
type State int

// The classic three states. Closed passes operations through; Open rejects
// them outright until the cooldown elapses; HalfOpen admits a single probe
// whose outcome decides between reset (closed) and re-trip (open).
const (
	Closed State = iota
	HalfOpen
	Open
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// BreakerConfig parameterizes one circuit breaker.
type BreakerConfig struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures; <= 0 means 3.
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe; <= 0 means 30s.
	Cooldown time.Duration
	// Now replaces time.Now for deterministic tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a single circuit breaker: closed → open after
// FailureThreshold consecutive failures, open → half-open after Cooldown,
// half-open → closed on probe success / → open on probe failure. It is safe
// for concurrent use; while half-open, only one in-flight probe is admitted.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        State
	failures     int // consecutive failures while closed
	openedAt     time.Time
	probing      bool // half-open probe in flight
	trips        int64
	onTransition func(from, to State) // called outside the lock
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether an operation may proceed. An open breaker whose
// cooldown has elapsed transitions to half-open and admits the caller as the
// probe; until that probe resolves via Success or Failure, further callers
// are rejected.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var from, to State
	notify := false
	allowed := false
	switch b.state {
	case Closed:
		allowed = true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			from, to = b.state, HalfOpen
			b.state, b.probing, notify = HalfOpen, true, true
			allowed = true
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if notify && b.onTransition != nil {
		b.onTransition(from, to)
	}
	return allowed
}

// Success records a successful operation: the failure streak resets and a
// half-open breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	var from, to State
	notify := false
	b.failures = 0
	if b.state != Closed {
		from, to = b.state, Closed
		notify = true
	}
	b.state, b.probing = Closed, false
	b.mu.Unlock()
	if notify && b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Failure records a failed operation. Reports whether this failure tripped
// the breaker open (from closed at threshold, or a failed half-open probe).
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	var from State
	tripped := false
	switch b.state {
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			from, tripped = b.state, true
		}
	case HalfOpen:
		from, tripped = b.state, true
	case Open:
		// Late failure from before the trip; nothing to do.
	}
	if tripped {
		b.state, b.probing = Open, false
		b.failures = 0
		b.openedAt = b.cfg.Now()
		b.trips++
	}
	b.mu.Unlock()
	if tripped && b.onTransition != nil {
		b.onTransition(from, Open)
	}
	return tripped
}

// ReleaseProbe abandons a half-open probe without a verdict: the breaker
// stays half-open and the next Allow admits a fresh probe. Used when the
// probing operation was canceled by its caller — cancellation says nothing
// about the table's health. No-op in other states.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// State returns the current state without side effects: an open breaker past
// its cooldown still reports Open until an Allow call promotes it.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// BreakerSet manages one breaker per table, lazily created with a shared
// config, and mirrors their activity to observability:
//
//	resilience.breaker.trips              counter, all trips
//	resilience.breaker.trips.<cause>      counter per trip cause
//	resilience.breaker.rejects            counter, operations rejected
//	resilience.breaker.open               gauge, breakers currently open
//	resilience.breaker.state.<table>      gauge, 0=closed 1=half-open 2=open
type BreakerSet struct {
	cfg BreakerConfig
	reg *obs.Registry

	mu      sync.Mutex
	byTable map[string]*Breaker
}

// NewBreakerSet creates an empty set. reg nil falls back to obs.Default.
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry) *BreakerSet {
	if reg == nil {
		reg = obs.Default
	}
	return &BreakerSet{cfg: cfg, reg: reg, byTable: make(map[string]*Breaker)}
}

// For returns the table's breaker, creating it closed on first use.
func (s *BreakerSet) For(table string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.byTable[table]
	if !ok {
		b = NewBreaker(s.cfg)
		stateGauge := s.reg.Gauge("resilience.breaker.state." + table)
		openGauge := s.reg.Gauge("resilience.breaker.open")
		b.onTransition = func(from, to State) {
			stateGauge.Set(int64(to))
			if to == Open {
				openGauge.Add(1)
			} else if from == Open {
				openGauge.Add(-1)
			}
		}
		s.byTable[table] = b
	}
	return b
}

// Failure records a failed operation on the table's breaker, attributing any
// resulting trip to the cause classified from err. Reports whether the
// breaker tripped.
func (s *BreakerSet) Failure(table string, err error) bool {
	tripped := s.For(table).Failure()
	if tripped {
		s.reg.Counter("resilience.breaker.trips").Inc()
		s.reg.Counter("resilience.breaker.trips." + Reason(err)).Inc()
	}
	return tripped
}

// Reject records one rejected operation (breaker open).
func (s *BreakerSet) Reject() { s.reg.Counter("resilience.breaker.rejects").Inc() }

// States snapshots the per-table breaker states, sorted by table name.
func (s *BreakerSet) States() []TableState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TableState, 0, len(s.byTable))
	for t, b := range s.byTable {
		out = append(out, TableState{Table: t, State: b.State(), Trips: b.Trips()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// TableState is one breaker's snapshot in BreakerSet.States.
type TableState struct {
	Table string
	State State
	Trips int64
}

// BreakerOpenError reports an operation rejected because the table's
// circuit breaker is open. It is the "statistic unavailable" signal the
// degraded-mode planner keys on.
type BreakerOpenError struct {
	Table string
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit breaker open for table %s", e.Table)
}

// IsBreakerOpen reports whether err is (or wraps) a BreakerOpenError.
func IsBreakerOpen(err error) bool {
	var be *BreakerOpenError
	return errors.As(err, &be)
}

// Reason classifies why a statistics operation failed, for degraded-plan
// tagging and trip-cause counters: "breaker-open", "timeout" (deadline
// exceeded), "canceled", "transient", or "error" (permanent).
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case IsBreakerOpen(err):
		return "breaker-open"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case stats.IsTransient(err):
		return "transient"
	default:
		return "error"
	}
}
