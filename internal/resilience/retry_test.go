package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"autostats/internal/stats"
)

func TestScheduleDeterministic(t *testing.T) {
	p := DefaultRetry(7)
	p.MaxAttempts = 6
	a, b := p.Schedule(), p.Schedule()
	if len(a) != 5 {
		t.Fatalf("schedule length = %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("slot %d: %v != %v — schedule must be a pure function of (policy, seed)", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 8
	c := p2.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jittered schedules")
	}
}

func TestScheduleBoundsAndCap(t *testing.T) {
	p := Retry{
		MaxAttempts: 8,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		JitterFrac:  0.25,
		Seed:        42,
	}
	sched := p.Schedule()
	base := float64(10 * time.Millisecond)
	for i, d := range sched {
		b := base
		if b > float64(250*time.Millisecond) {
			b = float64(250 * time.Millisecond)
		}
		lo, hi := time.Duration(b*0.75), time.Duration(b*1.25)
		if d < lo || d > hi {
			t.Errorf("slot %d: %v outside jitter band [%v, %v]", i, d, lo, hi)
		}
		base *= 2
	}
	// The tail must be capped: slot 7 would be 1280ms uncapped.
	last := sched[len(sched)-1]
	if last > time.Duration(1.25*float64(250*time.Millisecond)) {
		t.Errorf("cap not applied: last backoff %v", last)
	}
}

func TestScheduleZeroValue(t *testing.T) {
	if s := (Retry{}).Schedule(); s != nil {
		t.Errorf("zero policy should have no backoffs, got %v", s)
	}
	if s := (Retry{MaxAttempts: 1}).Schedule(); s != nil {
		t.Errorf("single attempt should have no backoffs, got %v", s)
	}
}

// noSleep replaces the backoff sleep so tests run instantly.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

func TestDoRetriesTransientOnly(t *testing.T) {
	permanent := errors.New("permanent")
	p := Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: noSleep}

	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Errorf("permanent error: calls=%d err=%v — must not retry", calls, err)
	}

	calls = 0
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		return stats.Transient(permanent)
	})
	if calls != 3 {
		t.Errorf("transient error: calls=%d, want all 3 attempts", calls)
	}
	if !stats.IsTransient(err) || !errors.Is(err, permanent) {
		t.Errorf("exhaustion must return the last error intact, got %v", err)
	}

	calls = 0
	err = p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return stats.Transient(permanent)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("recovery on final attempt: calls=%d err=%v", calls, err)
	}
}

func TestDoRespectsContext(t *testing.T) {
	p := Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, Sleep: noSleep}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := p.Do(ctx, func(context.Context) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Errorf("pre-canceled ctx: calls=%d err=%v", calls, err)
	}

	// Cancellation during the backoff returns the attempt's error, not a bare
	// ctx error, so callers can still classify what failed.
	ctx2, cancel2 := context.WithCancel(context.Background())
	boom := stats.Transient(errors.New("boom"))
	p2 := p
	p2.Sleep = func(ctx context.Context, _ time.Duration) error {
		cancel2()
		return ctx.Err()
	}
	err = p2.Do(ctx2, func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("cancel during backoff: err=%v, want the attempt error", err)
	}
}

func TestDoOnRetryMatchesSchedule(t *testing.T) {
	p := DefaultRetry(99)
	p.MaxAttempts = 4
	p.Sleep = noSleep
	want := p.Schedule()

	var attempts []int
	var backoffs []time.Duration
	p.OnRetry = func(attempt int, err error, backoff time.Duration) {
		if !stats.IsTransient(err) {
			t.Errorf("OnRetry saw non-transient error %v", err)
		}
		attempts = append(attempts, attempt)
		backoffs = append(backoffs, backoff)
	}
	_ = p.Do(context.Background(), func(context.Context) error {
		return stats.Transient(errors.New("x"))
	})
	if len(attempts) != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", len(attempts))
	}
	for i, a := range attempts {
		if a != i+1 {
			t.Errorf("attempt numbering: got %v", attempts)
			break
		}
	}
	for i := range backoffs {
		if backoffs[i] != want[i] {
			t.Errorf("backoff %d: Do used %v, Schedule says %v", i, backoffs[i], want[i])
		}
	}
}
