package catalog

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDatumCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{
		{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-3, 3, -1}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := NewInt(c.a).Compare(NewInt(c.b)); got != c.want {
			t.Errorf("Compare(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDatumCompareCrossNumeric(t *testing.T) {
	if got := NewInt(2).Compare(NewFloat(2.5)); got != -1 {
		t.Errorf("int 2 vs float 2.5 = %d, want -1", got)
	}
	if got := NewFloat(3.0).Compare(NewInt(3)); got != 0 {
		t.Errorf("float 3.0 vs int 3 = %d, want 0", got)
	}
}

func TestDatumCompareStrings(t *testing.T) {
	if got := NewString("apple").Compare(NewString("banana")); got != -1 {
		t.Errorf("apple vs banana = %d", got)
	}
	if got := NewString("x").Compare(NewString("x")); got != 0 {
		t.Errorf("x vs x = %d", got)
	}
}

func TestDatumNullOrdering(t *testing.T) {
	n := NewNull(Int)
	if got := n.Compare(NewInt(-1 << 60)); got != -1 {
		t.Errorf("NULL should sort before any value, got %d", got)
	}
	if got := NewInt(0).Compare(n); got != 1 {
		t.Errorf("value vs NULL = %d, want 1", got)
	}
	if got := n.Compare(NewNull(Int)); got != 0 {
		t.Errorf("NULL vs NULL = %d, want 0", got)
	}
}

func TestDatumNullNeverEqual(t *testing.T) {
	n := NewNull(Int)
	if n.Equal(NewInt(0)) || NewInt(0).Equal(n) || n.Equal(NewNull(Int)) {
		t.Error("NULL must not Equal anything, including NULL (SQL semantics)")
	}
}

func TestDatumTryCompareIncompatible(t *testing.T) {
	if _, err := NewString("a").TryCompare(NewInt(1)); err == nil {
		t.Error("expected error comparing string with int")
	}
	if _, err := NewInt(1).TryCompare(NewString("a")); err == nil {
		t.Error("expected error comparing int with string")
	}
	if _, err := NewDate(1).TryCompare(NewFloat(1)); err == nil {
		t.Error("expected error comparing date with float")
	}
	if c, err := NewInt(2).TryCompare(NewFloat(2.5)); err != nil || c != -1 {
		t.Errorf("int vs float must stay comparable: c=%d err=%v", c, err)
	}
}

// TestDatumCompareTotalOrder: Compare never panics; incompatible types fall
// back to ordering by type code so sorts and histogram builds stay total.
func TestDatumCompareTotalOrder(t *testing.T) {
	s, i := NewString("a"), NewInt(1)
	cs, ci := s.Compare(i), i.Compare(s)
	if cs == 0 || ci == 0 || cs == ci {
		t.Errorf("incompatible types must order deterministically and antisymmetrically: %d vs %d", cs, ci)
	}
	if s.Equal(i) || i.Equal(s) {
		t.Error("incompatible types must not be Equal")
	}
}

// TestStringRankPreservesOrder: StringRank must order strings consistently
// with lexicographic order for strings differing within 8 bytes.
func TestStringRankPreservesOrder(t *testing.T) {
	f := func(a, b string) bool {
		// Truncate to 8 significant bytes — beyond that StringRank ties.
		ta, tb := trunc8(a), trunc8(b)
		ra, rb := StringRank(ta), StringRank(tb)
		switch strings.Compare(ta, tb) {
		case -1:
			return ra <= rb
		case 1:
			return ra >= rb
		default:
			return ra == rb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func trunc8(s string) string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

// TestStringRankStrictOrder checks sorted distinct short strings map to
// nondecreasing ranks.
func TestStringRankSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ss []string
	for i := 0; i < 200; i++ {
		b := make([]byte, 1+rng.Intn(6))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		ss = append(ss, string(b))
	}
	sort.Strings(ss)
	for i := 1; i < len(ss); i++ {
		if StringRank(ss[i-1]) > StringRank(ss[i]) {
			t.Fatalf("rank order violated: %q > %q", ss[i-1], ss[i])
		}
	}
}

func TestDatumToFloat(t *testing.T) {
	if NewInt(42).ToFloat() != 42 {
		t.Error("int ToFloat")
	}
	if NewFloat(2.5).ToFloat() != 2.5 {
		t.Error("float ToFloat")
	}
	if NewDate(8035).ToFloat() != 8035 {
		t.Error("date ToFloat")
	}
}

func TestDatumStringRendering(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{NewInt(7), "7"},
		{NewFloat(2.5), "2.5"},
		{NewString("it's"), "'it''s'"},
		{NewDate(8035), "DATE 8035"},
		{NewNull(String), "NULL"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{Int: "INT", Float: "FLOAT", String: "VARCHAR", Date: "DATE"} {
		if typ.String() != want {
			t.Errorf("%v.String() = %q", int(typ), typ.String())
		}
	}
}
