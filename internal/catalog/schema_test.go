package catalog

import (
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddTable(NewTable("emp",
		Column{Name: "id", Type: Int},
		Column{Name: "Name", Type: String},
		Column{Name: "dept_id", Type: Int},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(NewTable("dept",
		Column{Name: "id", Type: Int},
		Column{Name: "name", Type: String},
	)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaTableLookupCaseInsensitive(t *testing.T) {
	s := testSchema(t)
	for _, name := range []string{"emp", "EMP", "Emp"} {
		if _, err := s.Table(name); err != nil {
			t.Errorf("Table(%q): %v", name, err)
		}
	}
	if _, err := s.Table("nosuch"); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestSchemaDuplicateTable(t *testing.T) {
	s := testSchema(t)
	if err := s.AddTable(NewTable("EMP")); err == nil {
		t.Error("expected duplicate-table error")
	}
}

func TestColumnLookup(t *testing.T) {
	s := testSchema(t)
	tbl, _ := s.Table("emp")
	if i := tbl.ColumnIndex("NAME"); i != 1 {
		t.Errorf("ColumnIndex(NAME) = %d, want 1", i)
	}
	if i := tbl.ColumnIndex("missing"); i != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", i)
	}
	col, err := tbl.Column("dept_id")
	if err != nil || col.Type != Int {
		t.Errorf("Column(dept_id) = %+v, %v", col, err)
	}
	if _, err := tbl.Column("zzz"); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestAddIndexValidation(t *testing.T) {
	s := testSchema(t)
	if err := s.AddIndex(Index{Name: "i1", Table: "emp", Column: "id"}); err != nil {
		t.Fatalf("valid index rejected: %v", err)
	}
	if err := s.AddIndex(Index{Name: "i2", Table: "emp", Column: "nope"}); err == nil {
		t.Error("expected error for index on unknown column")
	}
	if err := s.AddIndex(Index{Name: "i3", Table: "nope", Column: "id"}); err == nil {
		t.Error("expected error for index on unknown table")
	}
	if _, ok := s.IndexOn("EMP", "ID"); !ok {
		t.Error("IndexOn should find the index case-insensitively")
	}
	if _, ok := s.IndexOn("emp", "name"); ok {
		t.Error("IndexOn found a nonexistent index")
	}
}

func TestAddForeignKeyValidation(t *testing.T) {
	s := testSchema(t)
	ok := ForeignKey{Table: "emp", Column: "dept_id", RefTable: "dept", RefColumn: "id"}
	if err := s.AddForeignKey(ok); err != nil {
		t.Fatalf("valid FK rejected: %v", err)
	}
	bad := ForeignKey{Table: "emp", Column: "dept_id", RefTable: "dept", RefColumn: "zzz"}
	if err := s.AddForeignKey(bad); err == nil {
		t.Error("expected error for FK to unknown column")
	}
}

func TestTableNamesSorted(t *testing.T) {
	s := testSchema(t)
	names := s.TableNames()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Errorf("TableNames() = %v", names)
	}
}
