package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Index describes a (single-column) secondary index. The paper's intro
// experiment runs against a tuned TPC-D database with indexes; access-path
// choice between scan and index seek is one of the plan decisions that
// statistics influence.
type Index struct {
	Name   string
	Table  string
	Column string
	// Unique indexes let the optimizer cap equality selectivity at one row.
	Unique bool
}

// ForeignKey declares a join relationship used by the workload generator to
// produce meaningful equi-joins.
type ForeignKey struct {
	Table, Column       string
	RefTable, RefColumn string
}

// Table is the schema of one relation.
type Table struct {
	Name    string
	Columns []Column
	// PrimaryKey names the primary key column ("" if none).
	PrimaryKey string

	byName map[string]int
}

// NewTable builds a table schema and indexes its columns by name.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.byName[strings.ToLower(c.Name)] = i
	}
	return t
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if t.byName == nil {
		t.byName = make(map[string]int, len(t.Columns))
		for i, c := range t.Columns {
			t.byName[strings.ToLower(c.Name)] = i
		}
	}
	if i, ok := t.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column's schema, or an error if absent.
func (t *Table) Column(name string) (Column, error) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, fmt.Errorf("catalog: table %s has no column %s", t.Name, name)
	}
	return t.Columns[i], nil
}

// Schema is a set of tables plus the metadata the optimizer and workload
// generator need: indexes and foreign keys.
type Schema struct {
	Tables      map[string]*Table
	Indexes     []Index
	ForeignKeys []ForeignKey
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{Tables: make(map[string]*Table)}
}

// AddTable registers a table; duplicate names are an error.
func (s *Schema) AddTable(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, ok := s.Tables[key]; ok {
		return fmt.Errorf("catalog: duplicate table %s", t.Name)
	}
	s.Tables[key] = t
	return nil
}

// Table looks up a table by case-insensitive name.
func (s *Schema) Table(name string) (*Table, error) {
	t, ok := s.Tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %s", name)
	}
	return t, nil
}

// AddIndex registers a secondary index after validating its target.
func (s *Schema) AddIndex(ix Index) error {
	t, err := s.Table(ix.Table)
	if err != nil {
		return err
	}
	if t.ColumnIndex(ix.Column) < 0 {
		return fmt.Errorf("catalog: index %s references unknown column %s.%s", ix.Name, ix.Table, ix.Column)
	}
	s.Indexes = append(s.Indexes, ix)
	return nil
}

// IndexOn returns the index covering table.column, if any.
func (s *Schema) IndexOn(table, column string) (Index, bool) {
	for _, ix := range s.Indexes {
		if strings.EqualFold(ix.Table, table) && strings.EqualFold(ix.Column, column) {
			return ix, true
		}
	}
	return Index{}, false
}

// AddForeignKey registers a join relationship after validating both ends.
func (s *Schema) AddForeignKey(fk ForeignKey) error {
	for _, end := range []struct{ t, c string }{{fk.Table, fk.Column}, {fk.RefTable, fk.RefColumn}} {
		t, err := s.Table(end.t)
		if err != nil {
			return err
		}
		if t.ColumnIndex(end.c) < 0 {
			return fmt.Errorf("catalog: foreign key references unknown column %s.%s", end.t, end.c)
		}
	}
	s.ForeignKeys = append(s.ForeignKeys, fk)
	return nil
}

// TableNames returns all table names in deterministic (sorted) order.
func (s *Schema) TableNames() []string {
	names := make([]string, 0, len(s.Tables))
	for _, t := range s.Tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}
