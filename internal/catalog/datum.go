// Package catalog defines the logical data model shared by every other
// subsystem: column types, datums (typed values), table and index metadata,
// and the database catalog itself.
//
// The catalog is deliberately independent of the physical storage layer
// (internal/storage) and of the optimizer; both consume it.
package catalog

import (
	"fmt"
	"strconv"
	"strings"
)

// Type is the logical type of a column.
type Type int

const (
	// Int is a 64-bit signed integer column.
	Int Type = iota
	// Float is a 64-bit floating point column.
	Float
	// String is a variable-length string column.
	String
	// Date is a day-granularity date column, stored as days since epoch.
	Date
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "VARCHAR"
	case Date:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Datum is a single typed value. Exactly one of the value fields is
// meaningful, selected by T. Dates reuse the I field (days since epoch).
//
// Datum is a small value type passed by value throughout the system.
type Datum struct {
	T Type
	I int64
	F float64
	S string
	// Null marks the SQL NULL value; T is still set to the column type.
	Null bool
}

// NewInt returns an Int datum.
func NewInt(v int64) Datum { return Datum{T: Int, I: v} }

// NewFloat returns a Float datum.
func NewFloat(v float64) Datum { return Datum{T: Float, F: v} }

// NewString returns a String datum.
func NewString(v string) Datum { return Datum{T: String, S: v} }

// NewDate returns a Date datum holding days since epoch.
func NewDate(days int64) Datum { return Datum{T: Date, I: days} }

// NewNull returns a NULL datum of type t.
func NewNull(t Type) Datum { return Datum{T: t, Null: true} }

// TryCompare orders d relative to other: -1 if d < other, 0 if equal, +1 if
// d > other. NULL sorts before every non-NULL value; Int and Float compare
// numerically across types. Any other type mix returns an error — reachable
// from parsed SQL that compares a column to a literal of an incompatible
// type, so it must surface as a query error, not a crash.
func (d Datum) TryCompare(other Datum) (int, error) {
	if d.Null || other.Null {
		switch {
		case d.Null && other.Null:
			return 0, nil
		case d.Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if d.T != other.T {
		if (d.T == Int || d.T == Float) && (other.T == Int || other.T == Float) {
			return cmpFloat(d.asFloat(), other.asFloat()), nil
		}
		return 0, fmt.Errorf("catalog: cannot compare incompatible types %s and %s", d.T, other.T)
	}
	switch d.T {
	case Int, Date:
		switch {
		case d.I < other.I:
			return -1, nil
		case d.I > other.I:
			return 1, nil
		default:
			return 0, nil
		}
	case Float:
		return cmpFloat(d.F, other.F), nil
	case String:
		return strings.Compare(d.S, other.S), nil
	default:
		return 0, fmt.Errorf("catalog: cannot compare unknown type %s", d.T)
	}
}

// Compare is TryCompare for contexts that need a total order and never mix
// types — sorting one column's values, histogram construction. It cannot
// fail: operands TryCompare rejects (incompatible or unknown types) order
// deterministically by type code, so a sort over heterogeneous data stays
// stable instead of crashing. Predicate evaluation must use TryCompare so a
// type mismatch surfaces as an error.
func (d Datum) Compare(other Datum) int {
	c, err := d.TryCompare(other)
	if err != nil {
		return cmpInt64(int64(d.T), int64(other.T))
	}
	return c
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func (d Datum) asFloat() float64 {
	if d.T == Float {
		return d.F
	}
	return float64(d.I)
}

// Equal reports whether two datums compare equal. NULL never equals anything,
// matching SQL semantics for predicate evaluation; incompatible types are
// simply unequal.
func (d Datum) Equal(other Datum) bool {
	if d.Null || other.Null {
		return false
	}
	c, err := d.TryCompare(other)
	return err == nil && c == 0
}

// ToFloat converts a numeric datum to float64 for histogram bucketing.
// Strings hash-order through their first bytes so histograms can still
// bucket them; see StringRank.
func (d Datum) ToFloat() float64 {
	switch d.T {
	case Int, Date:
		return float64(d.I)
	case Float:
		return d.F
	case String:
		return StringRank(d.S)
	default:
		return 0
	}
}

// StringRank maps a string onto a float preserving lexicographic order for
// the first eight bytes. It gives histograms a total order over strings
// without storing full values in bucket boundaries.
func StringRank(s string) float64 {
	var r float64
	scale := 1.0
	for i := 0; i < 8; i++ {
		scale /= 256
		var b byte
		if i < len(s) {
			b = s[i]
		}
		r += float64(b) * scale
	}
	return r
}

// String renders the datum as a SQL literal.
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.T {
	case Int:
		return strconv.FormatInt(d.I, 10)
	case Date:
		return fmt.Sprintf("DATE %d", d.I)
	case Float:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case String:
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	default:
		return "?"
	}
}
