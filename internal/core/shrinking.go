package core

import (
	"context"
	"sort"
	"strings"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// ShrinkResult reports a Shrinking Set run.
type ShrinkResult struct {
	// Kept is the resulting essential set, in ID order.
	Kept []stats.ID
	// Removed lists the statistics found non-essential, in removal order.
	Removed []stats.ID
	// OptimizerCalls counts optimizations performed (worst case |S|·|W|).
	OptimizerCalls int
}

// ShrinkingSet implements Figure 2: starting from the current statistics set
// S (assumed to be a superset of an essential set, e.g. built by MNSA), test
// each statistic in turn and discard it if hiding it — via the
// Ignore_Statistics_Subset extension — leaves the plan of every potentially
// relevant workload query equivalent to Plan(Q, S). The result is guaranteed
// to be an essential set for the workload under the given equivalence
// (execution-tree in the paper's Figure 2).
//
// initial nil means "all statistics currently in the manager". The specific
// essential set produced depends on the order statistics are tested (§5.2);
// statistics are tested in ascending ID order for determinism.
func ShrinkingSet(sess *optimizer.Session, queries []*query.Select, initial []stats.ID, eq Equivalence) (*ShrinkResult, error) {
	return ShrinkingSetCtx(context.Background(), sess, queries, initial, eq)
}

// ShrinkingSetCtx is ShrinkingSet honoring cancellation: ctx is checked
// between baseline optimizations and between per-statistic probe rounds.
// The algorithm only hides statistics (never mutates the manager), so a
// canceled run leaves no partial state behind.
func ShrinkingSetCtx(ctx context.Context, sess *optimizer.Session, queries []*query.Select, initial []stats.ID, eq Equivalence) (*ShrinkResult, error) {
	mgr := sess.Manager()
	if initial == nil {
		for _, s := range mgr.All() {
			initial = append(initial, s.ID)
		}
	}
	sorted := append([]stats.ID(nil), initial...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	res := &ShrinkResult{}
	dbName := mgr.Database().Name
	reg := sess.Obs()
	probes := reg.Counter("shrink.probes")
	equivChecks := reg.Counter("shrink.equiv_checks")
	sp := reg.StartSpan("shrink.run", map[string]any{"stats": len(sorted), "queries": len(queries)})
	defer func() {
		sp.End(map[string]any{
			"kept":            len(res.Kept),
			"removed":         len(res.Removed),
			"optimizer_calls": res.OptimizerCalls,
		})
	}()
	reg.Counter("shrink.runs").Inc()

	// Baseline plans Plan(Q, S) under the full initial set.
	sess.ClearIgnored()
	defer sess.ClearIgnored()
	baseline := make([]*optimizer.Plan, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		res.OptimizerCalls++
		baseline[i] = p
	}

	// Precompute per-query relevant columns for the relevance filter in
	// step 4 ("for each query Q in W for which s is potentially relevant").
	relevant := make([]map[string]map[string]bool, len(queries))
	for i, q := range queries {
		relevant[i] = map[string]map[string]bool{}
		for t, cols := range classifyColumns(q).allColumns() {
			m := map[string]bool{}
			for _, c := range cols {
				m[c] = true
			}
			relevant[i][t] = m
		}
	}

	removed := map[stats.ID]bool{}
	ignoreList := func(extra stats.ID) []stats.ID {
		out := make([]stats.ID, 0, len(removed)+1)
		for id := range removed {
			out = append(out, id)
		}
		out = append(out, extra)
		return out
	}

	for _, sid := range sorted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st := mgr.Get(sid)
		if st == nil {
			continue
		}
		essentialSomewhere := false
		for i, q := range queries {
			if !statRelevant(st, relevant[i]) {
				continue
			}
			if err := sess.IgnoreStatisticsSubset(dbName, ignoreList(sid)); err != nil {
				return nil, err
			}
			p, err := sess.Optimize(q)
			if err != nil {
				return nil, err
			}
			res.OptimizerCalls++
			probes.Inc()
			equivChecks.Inc()
			if !eq.Equivalent(p, baseline[i]) {
				essentialSomewhere = true
				break
			}
		}
		if !essentialSomewhere {
			removed[sid] = true
			res.Removed = append(res.Removed, sid)
			reg.Counter("shrink.removed").Inc()
		} else {
			reg.Counter("shrink.kept").Inc()
		}
	}
	sess.ClearIgnored()

	for _, sid := range sorted {
		if !removed[sid] {
			res.Kept = append(res.Kept, sid)
		}
	}
	return res, nil
}

// statRelevant reports whether any column of the statistic is a relevant
// column of the query (on the statistic's table).
func statRelevant(st *stats.Statistic, rel map[string]map[string]bool) bool {
	cols, ok := rel[strings.ToLower(st.Table)]
	if !ok {
		return false
	}
	for _, c := range st.Columns {
		if cols[c] {
			return true
		}
	}
	return false
}
