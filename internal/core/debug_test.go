package core

import (
	"testing"

	"autostats/internal/stats"
)

func TestDebugMNSATrace(t *testing.T) {
	db := testDB(t, 0)
	sess := newSession(t, db)
	q := mustParse(t, db, `SELECT * FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_shipdate < DATE 8500
		AND o_totalprice > 400000 AND l_quantity > 45`)
	cands := CandidateStats(q)
	mgr := sess.Manager()
	cfg := DefaultConfig()
	consumed := map[stats.ID]bool{}
	for i := 0; i < 10; i++ {
		missing := sess.MissingStatVars(q)
		p, err := sess.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("iter %d: missing=%v cost=%.1f", i, missing, p.Cost())
		if len(missing) == 0 {
			break
		}
		low := map[int]float64{}
		high := map[int]float64{}
		for _, v := range missing {
			low[v] = cfg.Epsilon
			high[v] = 1 - cfg.Epsilon
		}
		sess.SetSelectivityOverrides(low)
		pl, _ := sess.Optimize(q)
		sess.SetSelectivityOverrides(high)
		ph, _ := sess.Optimize(q)
		sess.ClearOverrides()
		t.Logf("  plow=%.1f phigh=%.1f", pl.Cost(), ph.Cost())
		if (TOptimizerCost{T: cfg.T}).Equivalent(pl, ph) {
			t.Logf("  equivalent -> stop")
			break
		}
		unit := findNextStatToBuild(p, cands, mgr, consumed, missing)
		if len(unit) == 0 {
			t.Logf("  no candidates -> stop")
			break
		}
		for _, c := range unit {
			consumed[c.ID()] = true
			if _, err := mgr.Create(c.Table, c.Columns); err != nil {
				t.Fatal(err)
			}
			t.Logf("  built %s", c.ID())
		}
	}
}
