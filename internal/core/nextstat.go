package core

import (
	"sort"
	"strings"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// findNextStatToBuild implements §4.2: locate the most expensive operator in
// the default-magic-number plan (node cost minus children cost) that still
// has unbuilt relevant candidate statistics, and return those statistics as
// one build unit. Statistics on the two sides of a join predicate are
// dependent and returned as a pair. Only candidates that can cover a
// currently missing selectivity variable are considered — building a
// statistic for an already-covered predicate cannot move the sensitivity
// test.
func findNextStatToBuild(p *optimizer.Plan, cands []Candidate, mgr *stats.Manager, consumed map[stats.ID]bool, missing []int) []Candidate {
	missingSet := make(map[int]bool, len(missing))
	groupVarID := -1
	if p.Query != nil {
		groupVarID = p.Query.GroupVarID
	}
	for _, v := range missing {
		missingSet[v] = true
		if v == groupVarID && groupVarID >= 0 {
			missingSet[groupVarKey] = true
		}
	}
	available := func(c Candidate) bool {
		id := c.ID()
		return !consumed[id] && !mgr.Has(id)
	}
	// Index candidates by table for matching.
	byTable := map[string][]Candidate{}
	for _, c := range cands {
		byTable[strings.ToLower(c.Table)] = append(byTable[strings.ToLower(c.Table)], c)
	}

	// Collect nodes in DFS order, then sort by local cost descending (DFS
	// index breaks ties deterministically).
	type rankedNode struct {
		n   *optimizer.Node
		idx int
	}
	var nodes []rankedNode
	var walk func(n *optimizer.Node)
	walk = func(n *optimizer.Node) {
		nodes = append(nodes, rankedNode{n, len(nodes)})
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(p.Root)
	sort.SliceStable(nodes, func(a, b int) bool {
		la, lb := nodes[a].n.LocalCost(), nodes[b].n.LocalCost()
		if la != lb {
			return la > lb
		}
		return nodes[a].idx < nodes[b].idx
	})

	for _, rn := range nodes {
		if unit := nodeUnit(rn.n, byTable, available, missingSet); len(unit) > 0 {
			return unit
		}
	}
	// Fallback for progress: the first available candidate overall.
	for _, c := range cands {
		if available(c) {
			return []Candidate{c}
		}
	}
	return nil
}

// nodeUnit returns the unbuilt candidates relevant to one plan node that can
// cover a missing selectivity variable: single-column candidates first
// (cheapest to build), then the multi-column role statistic.
func nodeUnit(n *optimizer.Node, byTable map[string][]Candidate, available func(Candidate) bool, missing map[int]bool) []Candidate {
	switch n.Op {
	case optimizer.OpTableScan, optimizer.OpIndexSeek:
		cols := map[string]bool{}
		for _, f := range n.Filters {
			if missing[f.VarID] {
				cols[strings.ToLower(f.Col.Column)] = true
			}
		}
		return roleUnit(strings.ToLower(n.Table), cols, byTable, available)

	case optimizer.OpHashJoin, optimizer.OpMergeJoin, optimizer.OpNestedLoopJoin, optimizer.OpIndexNLJoin:
		// Dependent pairs across the join (§4.2: "An example of such
		// dependence is statistics on columns of a join predicate. In such
		// situations, we need to create a pair of statistics").
		for _, j := range n.Joins {
			if !missing[j.VarID] {
				continue
			}
			var unit []Candidate
			for _, side := range []query.ColumnRef{j.Left, j.Right} {
				c := Candidate{Table: strings.ToLower(side.Table), Columns: []string{strings.ToLower(side.Column)}}
				if candidateExists(c, byTable) && available(c) {
					unit = append(unit, c)
				}
			}
			if len(unit) > 0 {
				return unit
			}
		}
		// Multi-column join statistics (role (c)): the pair covering all
		// join columns of this node per side.
		sideCols := map[string]map[string]bool{}
		for _, j := range n.Joins {
			if !missing[j.VarID] {
				continue
			}
			for _, side := range []query.ColumnRef{j.Left, j.Right} {
				t := strings.ToLower(side.Table)
				if sideCols[t] == nil {
					sideCols[t] = map[string]bool{}
				}
				sideCols[t][strings.ToLower(side.Column)] = true
			}
		}
		var tables []string
		for t := range sideCols {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		var unit []Candidate
		for _, t := range tables {
			for _, c := range byTable[t] {
				if len(c.Columns) >= 2 && colsSubset(c.Columns, sideCols[t]) && available(c) {
					unit = append(unit, c)
					break
				}
			}
		}
		return unit

	case optimizer.OpHashAggregate, optimizer.OpStreamAggregate:
		// GroupBy columns matter only while the clause's distinct-fraction
		// variable is missing; plan nodes do not carry the var ID, so the
		// caller encodes it as groupVarKey.
		if !missing[groupVarKey] {
			return nil
		}
		byT := map[string]map[string]bool{}
		for _, g := range n.GroupBy {
			t := strings.ToLower(g.Table)
			if byT[t] == nil {
				byT[t] = map[string]bool{}
			}
			byT[t][strings.ToLower(g.Column)] = true
		}
		var tables []string
		for t := range byT {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			if unit := roleUnit(t, byT[t], byTable, available); len(unit) > 0 {
				return unit
			}
		}
		return nil

	default:
		return nil
	}
}

// roleUnit finds the first available candidate on the table whose columns
// all belong to the given column set, preferring single-column candidates.
func roleUnit(table string, cols map[string]bool, byTable map[string][]Candidate, available func(Candidate) bool) []Candidate {
	var multi *Candidate
	for i, c := range byTable[table] {
		if !colsSubset(c.Columns, cols) || !available(c) {
			continue
		}
		if len(c.Columns) == 1 {
			return []Candidate{c}
		}
		if multi == nil {
			multi = &byTable[table][i]
		}
	}
	if multi != nil {
		return []Candidate{*multi}
	}
	return nil
}

// groupVarKey is the sentinel under which the GROUP BY clause's missing
// distinct-fraction variable is recorded (plan nodes do not carry var IDs).
const groupVarKey = -2

func colsSubset(cols []string, set map[string]bool) bool {
	for _, c := range cols {
		if !set[strings.ToLower(c)] {
			return false
		}
	}
	return true
}

func candidateExists(c Candidate, byTable map[string][]Candidate) bool {
	id := c.ID()
	for _, cand := range byTable[strings.ToLower(c.Table)] {
		if cand.ID() == id {
			return true
		}
	}
	return false
}
