package core

import (
	"testing"

	"autostats/internal/stats"
	"autostats/internal/workload"
)

// TestShrinkingSetFastAgreesWithSlow: the fast variant must produce an
// essential set with fewer optimizer calls; both variants' survivor sets
// must be equivalent to the full initial set for every query.
func TestShrinkingSetFastAgreesWithSlow(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	w, err := workload.Generate(db, workload.Config{Count: 25, Complexity: workload.Complex, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	queries := w.Queries()
	// Superset of an essential set: all candidates.
	for _, c := range WorkloadCandidates(queries, CandidateStats) {
		if _, err := mgr.Create(c.Table, c.Columns); err != nil {
			t.Fatal(err)
		}
	}
	eq := ExecutionTree{}

	slow, err := ShrinkingSet(sess, queries, nil, eq)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := ShrinkingSetFast(sess, queries, nil, eq)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("slow: kept %d, %d optimizer calls; fast: kept %d, %d optimizer calls",
		len(slow.Kept), slow.OptimizerCalls, len(fast.Kept), fast.OptimizerCalls)

	// The fast variant trades minimality for the coverage shortcut; its
	// overhead (verification + repair) must stay bounded.
	if fast.OptimizerCalls > slow.OptimizerCalls*3/2 {
		t.Errorf("fast variant used %d calls, slow used %d (overhead beyond bound)", fast.OptimizerCalls, slow.OptimizerCalls)
	}

	// Both survivor sets must preserve every query's plan vs the full set.
	verify := func(name string, kept []stats.ID) {
		keptSet := map[stats.ID]bool{}
		for _, id := range kept {
			keptSet[id] = true
		}
		for i, q := range queries {
			full, err := planWithVisible(sess, q, allVisible(mgr))
			if err != nil {
				t.Fatal(err)
			}
			sub, err := planWithVisible(sess, q, keptSet)
			if err != nil {
				t.Fatal(err)
			}
			if !eq.Equivalent(sub, full) {
				t.Errorf("%s survivor set not equivalent for Q%d: %s", name, i, q.SQL())
			}
		}
	}
	verify("slow", slow.Kept)
	verify("fast", fast.Kept)
}

func allVisible(mgr *stats.Manager) map[stats.ID]bool {
	m := map[stats.ID]bool{}
	for _, st := range mgr.All() {
		m[st.ID] = true
	}
	return m
}

// TestShrinkingSetFastMinimality: the fast result is minimal — removing any
// survivor breaks equivalence for some query.
func TestShrinkingSetFastMinimality(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	q := mustParse(t, db, `SELECT * FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_shipdate < DATE 8300 AND o_totalprice > 500000`)
	var cIDs []stats.ID
	for _, c := range CandidateStats(q) {
		if _, err := mgr.Create(c.Table, c.Columns); err != nil {
			t.Fatal(err)
		}
		cIDs = append(cIDs, c.ID())
	}
	eq := ExecutionTree{}
	fast, err := ShrinkingSetFast(sess, []*querySelect{q}, nil, eq)
	if err != nil {
		t.Fatal(err)
	}
	ok, reason, err := IsEssentialSet(sess, q, fast.Kept, cIDs, eq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("fast shrinking result is not an essential set: %s", reason)
	}
}
