package core

import (
	"testing"

	"autostats/internal/executor"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/workload"
)

func TestEquivalenceNotions(t *testing.T) {
	mk := func(cost float64, table string) *optimizer.Plan {
		return &optimizer.Plan{
			Root:  &optimizer.Node{Op: optimizer.OpTableScan, Table: table, Cost: cost},
			Query: &query.Select{},
		}
	}
	a, b := mk(100, "t"), mk(100, "t")
	if !(ExecutionTree{}).Equivalent(a, b) {
		t.Error("identical plans must be execution-tree equivalent")
	}
	c := mk(100, "u")
	if (ExecutionTree{}).Equivalent(a, c) {
		t.Error("different trees are not execution-tree equivalent")
	}
	if !(OptimizerCost{}).Equivalent(a, c) {
		t.Error("equal costs are optimizer-cost equivalent regardless of tree")
	}
	d := mk(115, "t")
	if (OptimizerCost{}).Equivalent(a, d) {
		t.Error("115 vs 100 is not exact-cost equivalent")
	}
	if !(TOptimizerCost{T: 20}).Equivalent(a, d) {
		t.Error("15% apart is within t=20%")
	}
	if (TOptimizerCost{T: 10}).Equivalent(a, d) {
		t.Error("15% apart is outside t=10%")
	}
	// Footnote 2 divides by the SMALLER cost.
	e := mk(119, "t")
	if !(TOptimizerCost{T: 20}).Equivalent(a, e) {
		t.Error("19/100 < 20% must be equivalent")
	}
	f := mk(121, "t")
	if (TOptimizerCost{T: 20}).Equivalent(a, f) {
		t.Error("21/100 > 20% must not be equivalent")
	}
	for _, eq := range []Equivalence{ExecutionTree{}, OptimizerCost{}, TOptimizerCost{T: 20}} {
		if eq.Name() == "" {
			t.Error("equivalence must have a name")
		}
	}
}

func TestWorkloadCandidatesDedup(t *testing.T) {
	db := testDB(t, 0)
	q1 := mustParse(t, db, "SELECT * FROM orders WHERE o_totalprice > 100")
	q2 := mustParse(t, db, "SELECT * FROM orders WHERE o_totalprice < 500 AND o_shippriority = 0")
	cands := WorkloadCandidates([]*querySelect{q1, q2}, CandidateStats)
	seen := map[string]bool{}
	for _, c := range cands {
		id := string(c.ID())
		if seen[id] {
			t.Errorf("duplicate candidate %s", id)
		}
		seen[id] = true
	}
	if !seen["orders(o_totalprice)"] || !seen["orders(o_shippriority)"] || !seen["orders(o_shippriority,o_totalprice)"] {
		t.Errorf("missing expected candidates: %v", seen)
	}
}

func TestOrderByColumnsNotRelevant(t *testing.T) {
	db := testDB(t, 0)
	q := mustParse(t, db, "SELECT * FROM orders WHERE o_totalprice > 100 ORDER BY o_orderdate")
	for _, c := range CandidateStats(q) {
		for _, col := range c.Columns {
			if col == "o_orderdate" {
				t.Errorf("ORDER BY-only column proposed as candidate (footnote 1): %s", c.ID())
			}
		}
	}
}

// TestOnTheFlyAutoManager drives the §6 aggressive policy end to end:
// queries trigger MNSA creation, DML drives the maintenance counters.
func TestOnTheFlyAutoManager(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	am := NewAutoManager(sess, executor.New(db))
	am.MaintenanceEvery = 10

	stmts := []string{
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45",
		"INSERT INTO region VALUES (9, 'X', 'c')",
		"SELECT * FROM orders WHERE o_totalprice > 400000",
		"DELETE FROM region WHERE r_regionkey = 9",
	}
	for _, sql := range stmts {
		stmt, err := sqlparser.Parse(db.Schema, sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := am.ProcessStatement(stmt); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	if len(sess.Manager().All()) == 0 {
		t.Error("on-the-fly mode should have created statistics")
	}
	if am.TotalExecCost <= 0 || am.StatementsRun != 4 {
		t.Errorf("accounting: cost=%v statements=%d", am.TotalExecCost, am.StatementsRun)
	}
	// Re-processing the same query should create nothing new (statistics
	// are already adequate) — the chicken-and-egg payoff.
	before := len(sess.Manager().All())
	stmt, _ := sqlparser.Parse(db.Schema, stmts[0])
	if _, err := am.ProcessStatement(stmt); err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Manager().All()); got != before {
		t.Errorf("repeat query created %d new statistics", got-before)
	}
}

// TestOfflineTune drives the conservative §6 policy: MNSA over the workload
// then Shrinking Set, with the non-essential remainder drop-listed.
func TestOfflineTune(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	w, err := workload.Generate(db, workload.Config{Count: 20, Complexity: workload.Simple, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := OfflineTune(sess, w.Queries(), DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MNSA.Created) == 0 {
		t.Fatal("offline tune created nothing")
	}
	mgr := sess.Manager()
	if len(rep.Shrink.Kept)+len(rep.Shrink.Removed) != len(mgr.All()) {
		t.Errorf("kept %d + removed %d != total %d", len(rep.Shrink.Kept), len(rep.Shrink.Removed), len(mgr.All()))
	}
	for _, id := range rep.DropListed {
		st := mgr.Get(id)
		if st == nil || !st.InDropList {
			t.Errorf("removed statistic %s not drop-listed", id)
		}
	}
	for _, id := range rep.Shrink.Kept {
		st := mgr.Get(id)
		if st == nil || st.InDropList {
			t.Errorf("essential statistic %s should be maintained", id)
		}
	}
}

// TestMNSAAgingDampens: a recently dropped statistic is not re-created for a
// cheap query, but an expensive query overrides aging (§6).
func TestMNSAAgingDampens(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	mgr.AgingWindow = 1000

	q := mustParse(t, db, "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45")
	cfg := DefaultConfig()
	res, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Created) == 0 {
		t.Fatal("setup: nothing created")
	}
	// Physically drop everything that was created.
	for _, id := range res.Created {
		mgr.Drop(id)
	}
	// With aging enabled and a sky-high cost threshold, re-tuning must skip
	// re-creation.
	cfg.UseAging = true
	cfg.AgingCostThreshold = 1e18
	res2, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Created) != 0 {
		t.Errorf("aging should dampen re-creation; created %v", res2.Created)
	}
	if len(res2.AgeSkipped) == 0 {
		t.Error("expected age-skipped candidates")
	}
	// An expensive query (threshold 0 → every query counts as expensive)
	// overrides aging.
	cfg.AgingCostThreshold = 0
	res3, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Created) == 0 {
		t.Error("expensive query must bypass aging damping")
	}
}

// TestMNSASmallTableShortcut: §4.3's threshold — candidates on small tables
// are created without analysis.
func TestMNSASmallTableShortcut(t *testing.T) {
	db := testDB(t, 0)
	sess := newSession(t, db)
	q := mustParse(t, db, "SELECT * FROM region WHERE r_name = 'ASIA'")
	cfg := DefaultConfig()
	cfg.MinTableRows = 100 // region has 5 rows
	res, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.Created {
		if id == "region(r_name)" {
			found = true
		}
	}
	if !found {
		t.Errorf("small-table candidate not auto-created: %v", res.Created)
	}
}

// TestMNSADResurrection: a statistic wrongly drop-listed for one query is
// rescued when a later query's plan depends on it (§5).
func TestMNSADResurrection(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	cfg := DefaultConfig()
	cfg.Drop = true

	// Force the scenario: create a statistic and drop-list it manually,
	// then run MNSA/D on a query whose plan needs it.
	st, err := mgr.Create("orders", []string{"o_orderdate"})
	if err != nil {
		t.Fatal(err)
	}
	mgr.AddToDropList(st.ID)
	q := mustParse(t, db, "SELECT * FROM orders WHERE o_orderdate > DATE 10400")
	res, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.InDropList {
		t.Errorf("statistic should have been resurrected; result: %+v", res)
	}
}

func TestExhaustiveIsSupersetOfCandidates(t *testing.T) {
	db := testDB(t, 0)
	for _, sql := range []string{
		"SELECT * FROM lineitem WHERE l_quantity > 10 AND l_discount < 0.05 AND l_tax = 0",
		"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND o_totalprice > 100",
		"SELECT o_orderpriority FROM orders GROUP BY o_orderpriority",
	} {
		q := mustParse(t, db, sql)
		ex := map[string]bool{}
		for _, c := range ExhaustiveStats(q) {
			ex[string(c.ID())] = true
		}
		for _, c := range CandidateStats(q) {
			if len(c.Columns) > exhaustiveMaxWidth {
				continue
			}
			// Exhaustive enumerates subsets in sorted order; candidates are
			// sorted too, so IDs line up.
			if !ex[string(c.ID())] {
				t.Errorf("%q: candidate %s missing from exhaustive set", sql, c.ID())
			}
		}
	}
}

// TestCostWeightedTuning: the §6 coverage knob must tune fewer queries and
// create at most as many statistics as the full run, and full coverage must
// match RunMNSAWorkload.
func TestCostWeightedTuning(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	w, err := workload.Generate(db, workload.Config{Count: 30, Complexity: workload.Complex, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	queries := w.Queries()
	wrFull, tunedFull, err := RunMNSACostWeighted(sess, queries, DefaultConfig(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tunedFull != len(queries) {
		t.Errorf("coverage 1.0 should tune all %d queries, tuned %d", len(queries), tunedFull)
	}

	db2 := testDB(t, 2)
	sess2 := newSession(t, db2)
	wrHalf, tunedHalf, err := RunMNSACostWeighted(sess2, queries, DefaultConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tunedHalf >= tunedFull {
		t.Errorf("coverage 0.5 should tune fewer queries: %d vs %d", tunedHalf, tunedFull)
	}
	if len(wrHalf.Created) > len(wrFull.Created) {
		t.Errorf("coverage 0.5 created more statistics (%d) than full (%d)", len(wrHalf.Created), len(wrFull.Created))
	}
	if _, _, err := RunMNSACostWeighted(sess2, queries, DefaultConfig(), 0); err == nil {
		t.Error("coverage 0 should error")
	}
	if _, _, err := RunMNSACostWeighted(sess2, queries, DefaultConfig(), 1.5); err == nil {
		t.Error("coverage > 1 should error")
	}
}
