package core

import (
	"sort"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// ShrinkingSetFast implements the efficiency technique sketched at the end
// of §5.2 (detailed in the paper's [5]): "it is often possible to quickly
// find a small set of statistics that is essential for many queries in the
// workload. Once such a set S' is found, we subsequently need to consider
// only those queries for which S' is not adequate."
//
// Phase 1 builds the seed set S': for every query, hide ALL candidate
// removals at once and keep the statistics its plan still uses — one
// optimization per query instead of one per (statistic, query) pair. Any
// query whose plan under S' alone is already equivalent to its baseline is
// marked covered and excluded from phase 2's per-statistic scans.
//
// Phase 2 runs the standard Figure 2 loop, but each statistic is tested only
// against the uncovered queries (plus the §5.2 relevance filter).
//
// Because plan choice is not monotone in the visible statistics set, the
// coverage shortcut can occasionally remove a statistic a covered query
// needs; phase 3 therefore VERIFIES every query against the final survivor
// set and repairs failures: the removed statistics relevant to a failing
// query are restored (which provably re-establishes its baseline plan, since
// only relevant statistics can be consulted), then each restored statistic
// is re-tested against all queries.
//
// The survivor set carries the workload-equivalence guarantee of Figure 2;
// unlike ShrinkingSet it is not guaranteed minimal (repair restores
// conservatively), and — measured honestly — at this repository's micro
// scale the optimizer-call savings rarely materialize, because the slow
// algorithm's relevance filter plus early termination already prune most
// tests. See BenchmarkAblationShrinkFast and EXPERIMENTS.md.
func ShrinkingSetFast(sess *optimizer.Session, queries []*query.Select, initial []stats.ID, eq Equivalence) (*ShrinkResult, error) {
	mgr := sess.Manager()
	if initial == nil {
		for _, s := range mgr.All() {
			initial = append(initial, s.ID)
		}
	}
	sorted := append([]stats.ID(nil), initial...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	inInitial := make(map[stats.ID]bool, len(sorted))
	for _, id := range sorted {
		inInitial[id] = true
	}

	res := &ShrinkResult{}
	dbName := mgr.Database().Name
	sess.ClearIgnored()
	defer sess.ClearIgnored()

	// Baselines Plan(Q, S).
	baseline := make([]*optimizer.Plan, len(queries))
	for i, q := range queries {
		p, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		res.OptimizerCalls++
		baseline[i] = p
	}

	// Phase 1: seed set S' = statistics consulted by the baseline plans of
	// a small prefix of the workload ("a small set of statistics that is
	// essential for many queries"); workload queries repeat shapes, so a few
	// plans usually cover the hot statistics.
	seedFrom := len(queries)/10 + 3
	if seedFrom > len(queries) {
		seedFrom = len(queries)
	}
	seed := map[stats.ID]bool{}
	for _, p := range baseline[:seedFrom] {
		for _, id := range p.UsedStats {
			if inInitial[id] {
				seed[id] = true
			}
		}
	}
	// Queries already equivalent under the seed set alone are covered.
	outsideSeed := make([]stats.ID, 0, len(sorted))
	for _, id := range sorted {
		if !seed[id] {
			outsideSeed = append(outsideSeed, id)
		}
	}
	covered := make([]bool, len(queries))
	if len(outsideSeed) > 0 {
		if err := sess.IgnoreStatisticsSubset(dbName, outsideSeed); err != nil {
			return nil, err
		}
		for i, q := range queries {
			p, err := sess.Optimize(q)
			if err != nil {
				return nil, err
			}
			res.OptimizerCalls++
			covered[i] = eq.Equivalent(p, baseline[i])
		}
		sess.ClearIgnored()
	} else {
		for i := range covered {
			covered[i] = true
		}
	}

	// Relevance filter (as in ShrinkingSet).
	relevant := make([]map[string]map[string]bool, len(queries))
	for i, q := range queries {
		relevant[i] = map[string]map[string]bool{}
		for t, cols := range classifyColumns(q).allColumns() {
			m := map[string]bool{}
			for _, c := range cols {
				m[c] = true
			}
			relevant[i][t] = m
		}
	}

	removed := map[stats.ID]bool{}
	ignoreList := func(extra stats.ID) []stats.ID {
		out := make([]stats.ID, 0, len(removed)+1)
		for id := range removed {
			out = append(out, id)
		}
		return append(out, extra)
	}

	// Statistics outside the seed set are non-essential for every COVERED
	// query by construction; they only need testing against uncovered ones.
	// Seed statistics are tested against every relevant query, since a
	// covered query may depend on them.
	for _, sid := range sorted {
		st := mgr.Get(sid)
		if st == nil {
			continue
		}
		essential := false
		for i, q := range queries {
			if !seed[sid] && covered[i] {
				continue
			}
			if !statRelevant(st, relevant[i]) {
				continue
			}
			if err := sess.IgnoreStatisticsSubset(dbName, ignoreList(sid)); err != nil {
				return nil, err
			}
			p, err := sess.Optimize(q)
			if err != nil {
				return nil, err
			}
			res.OptimizerCalls++
			if !eq.Equivalent(p, baseline[i]) {
				essential = true
				break
			}
		}
		if !essential {
			removed[sid] = true
			res.Removed = append(res.Removed, sid)
		}
	}
	sess.ClearIgnored()

	// Phase 3: verify every query against the survivor set and repair.
	testStat := func(sid stats.ID) (bool, error) {
		// Standard Figure 2 test of sid against ALL relevant queries under
		// the current removed set.
		st := mgr.Get(sid)
		if st == nil {
			return false, nil
		}
		for i, q := range queries {
			if !statRelevant(st, relevant[i]) {
				continue
			}
			if err := sess.IgnoreStatisticsSubset(dbName, ignoreList(sid)); err != nil {
				return false, err
			}
			p, err := sess.Optimize(q)
			if err != nil {
				return false, err
			}
			res.OptimizerCalls++
			if !eq.Equivalent(p, baseline[i]) {
				return true, nil // essential somewhere
			}
		}
		return false, nil
	}
	for pass := 0; pass < len(queries)+1; pass++ {
		var restored []stats.ID
		for i, q := range queries {
			currentIgnore := make([]stats.ID, 0, len(removed))
			for id := range removed {
				currentIgnore = append(currentIgnore, id)
			}
			if err := sess.IgnoreStatisticsSubset(dbName, currentIgnore); err != nil {
				return nil, err
			}
			p, err := sess.Optimize(q)
			if err != nil {
				return nil, err
			}
			res.OptimizerCalls++
			if eq.Equivalent(p, baseline[i]) {
				continue
			}
			// Restore every removed statistic relevant to this query.
			for id := range removed {
				if st := mgr.Get(id); st != nil && statRelevant(st, relevant[i]) {
					restored = append(restored, id)
				}
			}
			for _, id := range restored {
				delete(removed, id)
			}
		}
		sess.ClearIgnored()
		if len(restored) == 0 {
			break
		}
		// Recover minimality: re-test each restored statistic against all
		// queries; safe ones go back to removed.
		sort.Slice(restored, func(i, j int) bool { return restored[i] < restored[j] })
		for _, sid := range restored {
			if removed[sid] {
				continue
			}
			essential, err := testStat(sid)
			if err != nil {
				return nil, err
			}
			if !essential {
				removed[sid] = true
			}
		}
		sess.ClearIgnored()
	}

	res.Removed = res.Removed[:0]
	for _, sid := range sorted {
		if removed[sid] {
			res.Removed = append(res.Removed, sid)
		} else {
			res.Kept = append(res.Kept, sid)
		}
	}
	return res, nil
}
