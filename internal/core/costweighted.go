package core

import (
	"fmt"
	"sort"

	"autostats/internal/optimizer"
	"autostats/internal/query"
)

// RunMNSACostWeighted implements the §6 off-line optimization: "in MNSA we
// may only consider building statistics that would potentially serve a
// significant fraction of the workload cost." Queries are ranked by their
// optimizer-estimated cost under the CURRENT statistics (default magic
// numbers where none exist); MNSA then runs only over the most expensive
// queries that together cover `coverage` (0..1] of total estimated workload
// cost. Cheap tail queries are skipped entirely — their plans may remain
// suboptimal, but by construction they contribute little to the bill.
func RunMNSACostWeighted(sess *optimizer.Session, queries []*query.Select, cfg Config, coverage float64) (*WorkloadResult, int, error) {
	if coverage <= 0 || coverage > 1 {
		return nil, 0, fmt.Errorf("core: coverage %v out of (0,1]", coverage)
	}
	type ranked struct {
		q    *query.Select
		cost float64
	}
	rs := make([]ranked, len(queries))
	total := 0.0
	for i, q := range queries {
		p, err := sess.Optimize(q)
		if err != nil {
			return nil, 0, err
		}
		rs[i] = ranked{q: q, cost: p.Cost()}
		total += p.Cost()
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].cost > rs[b].cost })

	var selected []*query.Select
	covered := 0.0
	for _, r := range rs {
		if covered >= coverage*total && len(selected) > 0 {
			break
		}
		selected = append(selected, r.q)
		covered += r.cost
	}
	wr, err := RunMNSAWorkload(sess, selected, cfg)
	if err != nil {
		return nil, 0, err
	}
	wr.OptimizerCalls += len(queries) // the ranking pass
	return wr, len(selected), nil
}
