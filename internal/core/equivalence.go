package core

import (
	"fmt"
	"math"

	"autostats/internal/optimizer"
)

// Equivalence compares two plans for the same query under one of the §3.2
// notions. The notions are ordered by increasing flexibility:
// execution-tree ⊂ optimizer-cost ⊂ t-optimizer-cost.
type Equivalence interface {
	// Equivalent reports whether the two plans are equivalent.
	Equivalent(a, b *optimizer.Plan) bool
	// Name identifies the notion in reports.
	Name() string
}

// ExecutionTree is the strongest notion: the optimizer generated the same
// execution tree for both statistics sets.
type ExecutionTree struct{}

// Equivalent compares plan signatures.
func (ExecutionTree) Equivalent(a, b *optimizer.Plan) bool {
	return a.Signature() == b.Signature()
}

// Name implements Equivalence.
func (ExecutionTree) Name() string { return "execution-tree" }

// OptimizerCost requires the optimizer-estimated costs to be (numerically)
// equal; the plans themselves may differ.
type OptimizerCost struct{}

// Equivalent compares estimated costs exactly (within floating-point noise).
func (OptimizerCost) Equivalent(a, b *optimizer.Plan) bool {
	ca, cb := a.Cost(), b.Cost()
	if ca == cb {
		return true
	}
	// Tolerate relative float error; this is still "equal cost", not a
	// t-threshold.
	return math.Abs(ca-cb) <= 1e-9*math.Max(math.Abs(ca), math.Abs(cb))
}

// Name implements Equivalence.
func (OptimizerCost) Name() string { return "optimizer-cost" }

// TOptimizerCost is the paper's pragmatic working definition: costs within
// t percent of each other (footnote 2:
// |cost(S) − cost(S')| / min(cost) < t/100). T is in percent; the paper's
// experiments use T = 20.
type TOptimizerCost struct {
	T float64
}

// Equivalent implements the footnote-2 test.
func (e TOptimizerCost) Equivalent(a, b *optimizer.Plan) bool {
	lo, hi := a.Cost(), b.Cost()
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		return hi <= 0
	}
	return (hi-lo)/lo < e.T/100
}

// Name implements Equivalence.
func (e TOptimizerCost) Name() string { return fmt.Sprintf("%.0f%%-optimizer-cost", e.T) }
