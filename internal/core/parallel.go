package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// RunMNSAWorkloadParallel is RunMNSAWorkload with the per-query MNSA runs
// fanned out to a pool of parallelism workers. Each worker gets its own
// cloned session (sessions are single-goroutine; the statistics manager and
// plan cache they share are concurrency-safe), statistics accumulate in the
// shared manager exactly as in the serial driver, and the per-query results
// are merged deterministically in input order.
//
// parallelism <= 1 delegates to RunMNSAWorkload, so the output is
// byte-identical to the serial driver. With parallelism > 1 the outcome is
// schedule-dependent in the way serial query order already is: a query that
// runs after more statistics exist may stop earlier (its sensitivity extremes
// converge sooner), so the created set can differ from a serial run's —
// typically overlapping heavily — and per-query attribution moves to
// whichever worker first needed a statistic. Every created statistic is still
// drawn from the same candidate space and every query still terminates by the
// same Figure 1 criteria.
func RunMNSAWorkloadParallel(sess *optimizer.Session, queries []*query.Select, cfg Config, parallelism int) (*WorkloadResult, error) {
	return RunMNSAWorkloadParallelCtx(context.Background(), sess, queries, cfg, parallelism)
}

// RunMNSAWorkloadParallelCtx is RunMNSAWorkloadParallel honoring
// cancellation: the dispatcher stops handing out queries the moment ctx is
// done, in-flight per-query analyses stop at their next iteration boundary,
// and the call returns promptly with ctx's error. Statistics already built
// remain (each build is individually atomic), accounting stays consistent,
// and no worker goroutine outlives the call.
func RunMNSAWorkloadParallelCtx(ctx context.Context, sess *optimizer.Session, queries []*query.Select, cfg Config, parallelism int) (*WorkloadResult, error) {
	if parallelism <= 1 {
		return RunMNSAWorkloadCtx(ctx, sess, queries, cfg)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	if len(queries) == 0 {
		return &WorkloadResult{}, nil
	}

	mgr := sess.Manager()
	pre := map[stats.ID]bool{}
	for _, id := range mgr.DropListIDs() {
		pre[id] = true
	}

	reg := sess.Obs()
	// tune.worker.busy accumulates per-query work time across all workers;
	// bench harnesses divide its sum by wall-clock × workers to report pool
	// utilization. The gauge records the pool size of the most recent run.
	busy := reg.Timing("tune.worker.busy")
	workerQueries := reg.Counter("tune.worker.queries")
	reg.Gauge("tune.workers").Set(int64(parallelism))
	sp := reg.StartSpan("tune.parallel", map[string]any{"queries": len(queries), "workers": parallelism})

	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := sess.Clone()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // drain remaining indices without working
				}
				qStart := time.Now()
				results[i], errs[i] = RunMNSACtx(ctx, ws, queries[i], cfg)
				busy.Observe(time.Since(qStart))
				workerQueries.Inc()
			}
		}()
	}
	// The dispatcher stops feeding the moment ctx is done so cancellation
	// returns promptly instead of waiting for every queued query.
dispatch:
	for i := range queries {
		select {
		case indices <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indices)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		sp.End(map[string]any{"error": err.Error()})
		return nil, err
	}
	// Report the first failure by input position so reruns see a stable
	// error regardless of goroutine scheduling.
	for i, err := range errs {
		if err != nil {
			sp.End(map[string]any{"error": err.Error()})
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}

	mergeStart := time.Now()
	wr := &WorkloadResult{PerQuery: results}
	seen := map[stats.ID]bool{}
	for _, r := range results {
		wr.OptimizerCalls += r.OptimizerCalls
		wr.BuildFailures = append(wr.BuildFailures, r.BuildFailures...)
		for _, id := range r.Created {
			if !seen[id] {
				seen[id] = true
				wr.Created = append(wr.Created, id)
			}
		}
	}
	for _, id := range mgr.DropListIDs() {
		if !pre[id] {
			wr.DropListed = append(wr.DropListed, id)
		}
	}
	reg.Timing("tune.merge.latency").Observe(time.Since(mergeStart))
	sp.End(map[string]any{
		"created":         len(wr.Created),
		"drop_listed":     len(wr.DropListed),
		"optimizer_calls": wr.OptimizerCalls,
	})
	return wr, nil
}

// OfflineTuneParallel is OfflineTune with the MNSA creation phase run through
// RunMNSAWorkloadParallel. The Shrinking Set phase stays serial: it is a
// sequence of dependent hide-and-reoptimize probes over shared session state,
// and its optimizer calls are the cheap part once statistics exist.
func OfflineTuneParallel(sess *optimizer.Session, queries []*query.Select, cfg Config, eq Equivalence, parallelism int) (*TuneReport, error) {
	return OfflineTuneParallelCtx(context.Background(), sess, queries, cfg, eq, parallelism)
}

// OfflineTuneParallelCtx is OfflineTuneParallel honoring cancellation in
// both phases.
func OfflineTuneParallelCtx(ctx context.Context, sess *optimizer.Session, queries []*query.Select, cfg Config, eq Equivalence, parallelism int) (*TuneReport, error) {
	if eq == nil {
		eq = ExecutionTree{}
	}
	rep := &TuneReport{}
	wr, err := RunMNSAWorkloadParallelCtx(ctx, sess, queries, cfg, parallelism)
	if err != nil {
		return nil, err
	}
	rep.MNSA = wr

	sr, err := ShrinkingSetCtx(ctx, sess, queries, nil, eq)
	if err != nil {
		return nil, err
	}
	rep.Shrink = sr
	mgr := sess.Manager()
	for _, id := range sr.Removed {
		if mgr.AddToDropList(id) {
			rep.DropListed = append(rep.DropListed, id)
		}
	}
	return rep, nil
}
