package core

import (
	"testing"

	"autostats/internal/stats"
	"autostats/internal/workload"
)

// TestMNSAInvariantsOnRandomWorkloads checks, across random workloads and
// skews, the contract of Figure 1:
//
//  1. termination is one of the three defined reasons, and the reason is
//     truthful (no missing vars ⇔ TermNoMissing; TermEquivalent ⇒ the
//     P_low/P_high spread is within t);
//  2. every created statistic is a proposed candidate and exists afterwards;
//  3. the optimizer-call overhead respects the §4.3 bound;
//  4. re-running MNSA immediately is a no-op (convergence).
func TestMNSAInvariantsOnRandomWorkloads(t *testing.T) {
	for _, z := range []float64{0, 2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			db := testDB(t, z)
			sess := newSession(t, db)
			mgr := sess.Manager()
			w, err := workload.Generate(db, workload.Config{
				Count: 15, Complexity: workload.Complex, Seed: seed, UpdatePct: 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			for qi, q := range w.Queries() {
				cands := map[stats.ID]bool{}
				for _, c := range cfg.CandidateFn(q) {
					cands[c.ID()] = true
				}
				res, err := RunMNSA(sess, q, cfg)
				if err != nil {
					t.Fatalf("z=%v seed=%d Q%d: %v", z, seed, qi, err)
				}

				switch res.TerminatedBy {
				case TermNoMissing:
					if missing := sess.MissingStatVars(q); len(missing) != 0 {
						t.Errorf("z=%v Q%d: TermNoMissing but vars %v still missing", z, qi, missing)
					}
				case TermEquivalent:
					missing := sess.MissingStatVars(q)
					if len(missing) == 0 {
						t.Errorf("z=%v Q%d: TermEquivalent with no missing vars (should be TermNoMissing)", z, qi)
						break
					}
					low := map[int]float64{}
					high := map[int]float64{}
					for _, v := range missing {
						low[v] = cfg.Epsilon
						high[v] = 1 - cfg.Epsilon
					}
					sess.SetSelectivityOverrides(low)
					pl, err := sess.Optimize(q)
					if err != nil {
						t.Fatal(err)
					}
					sess.SetSelectivityOverrides(high)
					ph, err := sess.Optimize(q)
					if err != nil {
						t.Fatal(err)
					}
					sess.ClearOverrides()
					if !(TOptimizerCost{T: cfg.T}).Equivalent(pl, ph) {
						t.Errorf("z=%v Q%d: TermEquivalent but spread %v vs %v exceeds t", z, qi, pl.Cost(), ph.Cost())
					}
				case TermNoCandidates:
					// Legal: candidates exhausted while vars remain missing.
				default:
					t.Errorf("z=%v Q%d: unknown termination %q", z, qi, res.TerminatedBy)
				}

				for _, id := range res.Created {
					if !cands[id] {
						t.Errorf("z=%v Q%d: created %s is not a candidate", z, qi, id)
					}
					if !mgr.Has(id) {
						t.Errorf("z=%v Q%d: created %s missing from manager", z, qi, id)
					}
				}
				if max := 1 + 3*res.Iterations; res.OptimizerCalls > max {
					t.Errorf("z=%v Q%d: %d optimizer calls exceed bound %d", z, qi, res.OptimizerCalls, max)
				}

				// Convergence: an immediate re-run builds nothing.
				again, err := RunMNSA(sess, q, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(again.Created) != 0 {
					t.Errorf("z=%v Q%d: re-run created %v", z, qi, again.Created)
				}
			}
		}
	}
}

// TestMNSADInvariants: MNSA/D's drop-list is always a subset of what it
// created or what already existed, and Maintained ∪ DropList = All.
func TestMNSADInvariants(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	w, err := workload.Generate(db, workload.Config{Count: 20, Complexity: workload.Complex, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Drop = true
	wr, err := RunMNSAWorkload(sess, w.Queries(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	created := map[stats.ID]bool{}
	for _, id := range wr.Created {
		created[id] = true
	}
	for _, id := range wr.DropListed {
		if !created[id] {
			t.Errorf("drop-listed %s was never created", id)
		}
	}
	if got := len(mgr.Maintained()) + len(mgr.DropList()); got != len(mgr.All()) {
		t.Errorf("maintained+droplist=%d, all=%d", got, len(mgr.All()))
	}
}

// TestWorkloadMNSAQualityAcrossSkews: after workload MNSA, total execution
// cost must stay within a modest band of the all-candidates baseline — the
// Figure 4 quality claim as a regression test across every skew level.
func TestWorkloadMNSAQualityAcrossSkews(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, z := range []float64{0, 2, 4} {
		// Baseline arm.
		dbA := testDB(t, z)
		sessA := newSession(t, dbA)
		w, err := workload.Generate(dbA, workload.Config{Count: 25, Complexity: workload.Complex, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		queries := w.Queries()
		for _, c := range WorkloadCandidates(queries, CandidateStats) {
			if _, err := sessA.Manager().Create(c.Table, c.Columns); err != nil {
				t.Fatal(err)
			}
		}
		execA := execQueries(t, dbA, sessA, queries)

		dbB := testDB(t, z)
		sessB := newSession(t, dbB)
		if _, err := RunMNSAWorkload(sessB, queries, DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		execB := execQueries(t, dbB, sessB, queries)

		increase := 100 * (execB - execA) / execA
		t.Logf("z=%v: all=%.0f mnsa=%.0f (%.1f%%)", z, execA, execB, increase)
		// t-optimizer-cost equivalence bounds ESTIMATED cost spread, not
		// actual execution cost; a single join-order coin flip on a magic
		// numbered predicate can cost ~2x on one query, which at a
		// 25-query workload is up to ~20-25%. The band reflects that known
		// heuristic risk (the paper's ≤2% rides on 1000-statement
		// workloads, where one flip amortizes).
		if increase > 25 {
			t.Errorf("z=%v: MNSA quality loss %.1f%% exceeds band", z, increase)
		}
	}
}
