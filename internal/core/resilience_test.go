package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"autostats/internal/resilience"
	"autostats/internal/stats"
)

// blockUntilCanceled is a failpoint that parks every build until its context
// is canceled — the "hung build path" scenario.
func blockUntilCanceled(ctx context.Context, _ string, _ stats.ID) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestParallelCancellationPromptAndClean: canceling a mid-flight parallel
// workload run must return promptly with the context's error, leave the
// manager's accounting and epoch untouched by the aborted builds, and leak no
// worker goroutines.
func TestParallelCancellationPromptAndClean(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	mgr.SetFailpoint(blockUntilCanceled)

	epochBefore := mgr.Epoch()
	acctBefore := mgr.Snapshot()
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	wr, err := RunMNSAWorkloadParallelCtx(ctx, sess, tuningWorkload(t, db), DefaultConfig(), 4)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wr != nil {
		t.Errorf("canceled run returned a result: %+v", wr)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v — not prompt", elapsed)
	}
	if got := mgr.Epoch(); got != epochBefore {
		t.Errorf("epoch moved %d -> %d despite no build completing", epochBefore, got)
	}
	acctAfter := mgr.Snapshot()
	if acctAfter.BuildCount != acctBefore.BuildCount || acctAfter.TotalBuildCost != acctBefore.TotalBuildCost {
		t.Errorf("accounting changed across canceled run: before=%+v after=%+v", acctBefore, acctAfter)
	}
	// All workers exit via wg.Wait before the call returns; give the runtime
	// a moment to reap and verify nothing leaked.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > goroutinesBefore+1 {
		t.Errorf("goroutines: %d before, %d after — worker leak", goroutinesBefore, got)
	}
}

// TestParallelPreCanceled: a context canceled before the call must fail fast
// without doing any work.
func TestParallelPreCanceled(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMNSAWorkloadParallelCtx(ctx, sess, tuningWorkload(t, db), DefaultConfig(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := len(sess.Manager().All()); n != 0 {
		t.Errorf("%d statistics built under a pre-canceled context", n)
	}
}

// TestMNSADegradedTolerant: with a resilience Builder installed and every
// build failing, MNSA must finish (not error), report every wanted build as a
// failure, and mark the session degraded; without a Builder the same failure
// aborts the analysis.
func TestMNSADegradedTolerant(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	boom := errors.New("boom")
	mgr.SetFailpoint(func(context.Context, string, stats.ID) error { return stats.Transient(boom) })

	q := mustParse(t, db, "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45")

	// Strict mode: the failure aborts.
	if _, err := RunMNSA(sess, q, DefaultConfig()); !errors.Is(err, boom) {
		t.Fatalf("strict mode: err = %v, want the build failure", err)
	}

	// Tolerant mode: degraded completion on magic numbers.
	guard := resilience.NewGuard(mgr, resilience.GuardConfig{
		Retry: resilience.Retry{MaxAttempts: 1},
	})
	cfg := DefaultConfig()
	cfg.Builder = guard
	sess.ClearDegraded()
	res, err := RunMNSACtx(context.Background(), sess, q, cfg)
	if err != nil {
		t.Fatalf("tolerant mode: %v", err)
	}
	if !res.Degraded() || len(res.BuildFailures) == 0 {
		t.Fatalf("run should be degraded with recorded failures: %+v", res)
	}
	for _, bf := range res.BuildFailures {
		if !errors.Is(bf.Err, boom) {
			t.Errorf("BuildFailure %s lost its cause: %v", bf.ID, bf.Err)
		}
	}
	if len(res.Created) != 0 {
		t.Errorf("nothing could be built, yet Created = %v", res.Created)
	}
	if reasons := sess.DegradedReasons(); len(reasons) == 0 {
		t.Error("session not marked degraded")
	}
	// Cancellation still aborts even in tolerant mode.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMNSACtx(ctx, sess, q, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("tolerant mode must still propagate cancellation, got %v", err)
	}
}
