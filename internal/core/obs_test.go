package core

import (
	"sync"
	"testing"

	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// obsSession builds a session whose manager reports into a private registry,
// so counters reflect exactly the work done by the test.
func obsSession(t testing.TB, db *storage.Database) (*optimizer.Session, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	mgr.SetObsRegistry(reg)
	return optimizer.NewSession(mgr), reg
}

// TestTuneCountersReconcile: after an offline tuning run the obs counters
// must agree with the returned reports and the manager's own accounting —
// the metrics are a second bookkeeping path over the same events, so any
// drift means one of the two is lying.
func TestTuneCountersReconcile(t *testing.T) {
	db := testDB(t, 2)
	sess, reg := obsSession(t, db)
	qs := tuningWorkload(t, db)
	cfg := DefaultConfig()

	rep, err := OfflineTune(sess, qs, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	if got := snap.Counters["mnsa.runs"]; got != int64(len(qs)) {
		t.Errorf("mnsa.runs = %d, want %d", got, len(qs))
	}
	if got := snap.Counters["mnsa.optimizer_calls"]; got != int64(rep.MNSA.OptimizerCalls) {
		t.Errorf("mnsa.optimizer_calls = %d, report says %d", got, rep.MNSA.OptimizerCalls)
	}
	if got := snap.Counters["shrink.runs"]; got != 1 {
		t.Errorf("shrink.runs = %d, want 1", got)
	}
	// Shrink charges one baseline optimization per query plus one per probe.
	wantProbes := int64(rep.Shrink.OptimizerCalls - len(qs))
	if got := snap.Counters["shrink.probes"]; got != wantProbes {
		t.Errorf("shrink.probes = %d, want %d", got, wantProbes)
	}
	if got := snap.Counters["shrink.removed"]; got != int64(len(rep.Shrink.Removed)) {
		t.Errorf("shrink.removed = %d, report says %d", got, len(rep.Shrink.Removed))
	}
	if got := snap.Counters["shrink.kept"]; got != int64(len(rep.Shrink.Kept)) {
		t.Errorf("shrink.kept = %d, report says %d", got, len(rep.Shrink.Kept))
	}

	// Manager accounting and its mirrored metrics must agree exactly.
	acc := sess.Manager().Snapshot()
	if got := snap.Counters["stats.builds"]; got != int64(acc.BuildCount) {
		t.Errorf("stats.builds = %d, manager says %d", got, acc.BuildCount)
	}
	if got := snap.FloatCounters["stats.build.cost_units"]; got != acc.TotalBuildCost {
		t.Errorf("stats.build.cost_units = %v, manager says %v", got, acc.TotalBuildCost)
	}
	// Every build in this run was charged by MNSA, so its consumption metric
	// must equal the manager's total build cost.
	if got := snap.FloatCounters["mnsa.units_consumed"]; got != acc.TotalBuildCost {
		t.Errorf("mnsa.units_consumed = %v, manager built %v", got, acc.TotalBuildCost)
	}
	if got := snap.Gauges["stats.count"]; got != int64(len(sess.Manager().All())) {
		t.Errorf("stats.count gauge = %d, manager holds %d", got, len(sess.Manager().All()))
	}

	// Every report-counted optimizer call went through Session.Optimize, as
	// either a fresh optimization or a plan-cache hit.
	total := int64(rep.MNSA.OptimizerCalls + rep.Shrink.OptimizerCalls)
	opts := snap.Counters["optimizer.optimizations"]
	hits := snap.Counters["optimizer.plancache.hits"]
	if opts+hits != total {
		t.Errorf("optimizations(%d) + cache hits(%d) = %d, reports counted %d calls", opts, hits, opts+hits, total)
	}
}

// countingTracer counts span starts and ends by name; safe for concurrent
// Emit as the Tracer contract requires.
type countingTracer struct {
	mu     sync.Mutex
	starts map[string]int
	ends   map[string]int
}

func newCountingTracer() *countingTracer {
	return &countingTracer{starts: map[string]int{}, ends: map[string]int{}}
}

func (c *countingTracer) Emit(ev obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Kind == obs.SpanStart {
		c.starts[ev.Name]++
	} else {
		c.ends[ev.Name]++
	}
}

// TestParallelTuningWithTracing runs the parallel driver with a tracer
// attached: spans must balance, worker metrics must add up, and the race
// detector gets a chance to object to the span plumbing.
func TestParallelTuningWithTracing(t *testing.T) {
	db := testDB(t, 2)
	sess, reg := obsSession(t, db)
	tr := newCountingTracer()
	reg.AddTracer(tr)
	cfg := DefaultConfig()
	cfg.Drop = true
	qs := tuningWorkload(t, db)

	const parallelism = 4
	wr, err := RunMNSAWorkloadParallel(sess, qs, cfg, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.PerQuery) != len(qs) {
		t.Fatalf("PerQuery = %d, want %d", len(wr.PerQuery), len(qs))
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.starts["tune.parallel"] != 1 || tr.ends["tune.parallel"] != 1 {
		t.Errorf("tune.parallel spans = %d/%d, want 1/1", tr.starts["tune.parallel"], tr.ends["tune.parallel"])
	}
	if tr.starts["mnsa.run"] != len(qs) || tr.ends["mnsa.run"] != len(qs) {
		t.Errorf("mnsa.run spans = %d/%d, want %d each", tr.starts["mnsa.run"], tr.ends["mnsa.run"], len(qs))
	}
	for name, n := range tr.starts {
		if tr.ends[name] != n {
			t.Errorf("span %q: %d starts but %d ends", name, n, tr.ends[name])
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["tune.worker.queries"]; got != int64(len(qs)) {
		t.Errorf("tune.worker.queries = %d, want %d", got, len(qs))
	}
	if got := snap.Gauges["tune.workers"]; got != parallelism {
		t.Errorf("tune.workers = %d, want %d", got, parallelism)
	}
	if got := snap.Timings["tune.worker.busy"].Count; got != int64(len(qs)) {
		t.Errorf("tune.worker.busy count = %d, want %d", got, len(qs))
	}
}
