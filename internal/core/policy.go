package core

import (
	"autostats/internal/executor"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// AutoManager glues the mechanisms into the §6 policies. In on-the-fly mode
// (the most aggressive policy, as in SQL Server 7.0's auto-statistics, but
// MNSA-pruned) every incoming query first passes through MNSA (or MNSA/D),
// then is optimized and executed; DML statements execute directly and
// periodically trigger the maintenance policy (update counters, threshold
// refresh, drop-list-restricted drops).
type AutoManager struct {
	sess *optimizer.Session
	ex   *executor.Executor

	// MNSA configures the per-query statistics creation; set Drop for
	// MNSA/D behaviour.
	MNSA Config
	// Policy is the maintenance (auto-update/auto-drop) policy.
	Policy stats.MaintenancePolicy
	// MaintenanceEvery runs a maintenance pass after every N statements
	// (0 disables automatic maintenance).
	MaintenanceEvery int

	stmtCount int

	// Totals since construction.
	TotalExecCost   float64
	StatementsRun   int
	MaintenanceRuns int
}

// NewAutoManager builds an auto manager with the paper's defaults
// (MNSA with t = 20 %, ε = 0.0005; SQL Server-style maintenance restricted
// to drop-listed statistics).
func NewAutoManager(sess *optimizer.Session, ex *executor.Executor) *AutoManager {
	return &AutoManager{
		sess:             sess,
		ex:               ex,
		MNSA:             DefaultConfig(),
		Policy:           stats.DefaultMaintenancePolicy(),
		MaintenanceEvery: 25,
	}
}

// Session returns the underlying optimizer session.
func (am *AutoManager) Session() *optimizer.Session { return am.sess }

// ProcessStatement handles one incoming statement under the on-the-fly
// policy and returns its execution result.
func (am *AutoManager) ProcessStatement(stmt query.Statement) (*executor.Result, error) {
	mgr := am.sess.Manager()
	mgr.Tick()
	am.StatementsRun++
	reg := am.sess.Obs()
	reg.Counter("auto.statements").Inc()

	if q, ok := stmt.(*query.Select); ok {
		if _, err := RunMNSA(am.sess, q, am.MNSA); err != nil {
			return nil, err
		}
	}
	res, err := am.ex.RunStatement(am.sess, stmt)
	if err != nil {
		return nil, err
	}
	am.TotalExecCost += res.Cost

	am.stmtCount++
	if am.MaintenanceEvery > 0 && am.stmtCount%am.MaintenanceEvery == 0 {
		if _, err := mgr.RunMaintenance(am.Policy); err != nil {
			return nil, err
		}
		am.MaintenanceRuns++
		reg.Counter("auto.maintenance_runs").Inc()
	}
	return res, nil
}

// TuneReport summarizes an offline tuning pass.
type TuneReport struct {
	// MNSA is the per-query creation phase outcome.
	MNSA *WorkloadResult
	// Shrink is the Shrinking Set phase outcome (nil if skipped).
	Shrink *ShrinkResult
	// DropListed lists the statistics moved to the drop-list by shrinking.
	DropListed []stats.ID
}

// OfflineTune implements the conservative §6 policy: an offline process runs
// MNSA over every query of the workload, then the Shrinking Set algorithm
// eliminates non-essential statistics, which are moved to the drop-list
// (physical deletion remains a separate policy action). eq nil defaults to
// execution-tree equivalence as in Figure 2.
func OfflineTune(sess *optimizer.Session, queries []*query.Select, cfg Config, eq Equivalence) (*TuneReport, error) {
	if eq == nil {
		eq = ExecutionTree{}
	}
	rep := &TuneReport{}
	wr, err := RunMNSAWorkload(sess, queries, cfg)
	if err != nil {
		return nil, err
	}
	rep.MNSA = wr

	sr, err := ShrinkingSet(sess, queries, nil, eq)
	if err != nil {
		return nil, err
	}
	rep.Shrink = sr
	mgr := sess.Manager()
	for _, id := range sr.Removed {
		if mgr.AddToDropList(id) {
			rep.DropListed = append(rep.DropListed, id)
		}
	}
	return rep, nil
}
