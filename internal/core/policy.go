package core

import (
	"context"

	"autostats/internal/executor"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/resilience"
	"autostats/internal/stats"
)

// AutoManager glues the mechanisms into the §6 policies. In on-the-fly mode
// (the most aggressive policy, as in SQL Server 7.0's auto-statistics, but
// MNSA-pruned) every incoming query first passes through MNSA (or MNSA/D),
// then is optimized and executed; DML statements execute directly and
// periodically trigger the maintenance policy (update counters, threshold
// refresh, drop-list-restricted drops).
type AutoManager struct {
	sess *optimizer.Session
	ex   *executor.Executor

	// MNSA configures the per-query statistics creation; set Drop for
	// MNSA/D behaviour.
	MNSA Config
	// Policy is the maintenance (auto-update/auto-drop) policy.
	Policy stats.MaintenancePolicy
	// MaintenanceEvery runs a maintenance pass after every N statements
	// (0 disables automatic maintenance).
	MaintenanceEvery int
	// Guard, when non-nil, routes statistic builds and maintenance through
	// the resilience stack (retry, per-table circuit breakers, per-build
	// timeouts) and switches the manager to degraded-mode planning: a
	// statement whose statistics cannot be built still plans and executes,
	// on the default magic-number selectivities for exactly the affected
	// predicates, with the plan tagged Degraded.
	Guard *resilience.Guard

	stmtCount int

	// Totals since construction.
	TotalExecCost   float64
	StatementsRun   int
	MaintenanceRuns int
	// DegradedStatements counts statements processed in degraded mode.
	DegradedStatements int
}

// NewAutoManager builds an auto manager with the paper's defaults
// (MNSA with t = 20 %, ε = 0.0005; SQL Server-style maintenance restricted
// to drop-listed statistics).
func NewAutoManager(sess *optimizer.Session, ex *executor.Executor) *AutoManager {
	return &AutoManager{
		sess:             sess,
		ex:               ex,
		MNSA:             DefaultConfig(),
		Policy:           stats.DefaultMaintenancePolicy(),
		MaintenanceEvery: 25,
	}
}

// Session returns the underlying optimizer session.
func (am *AutoManager) Session() *optimizer.Session { return am.sess }

// ProcessStatement handles one incoming statement under the on-the-fly
// policy and returns its execution result.
func (am *AutoManager) ProcessStatement(stmt query.Statement) (*executor.Result, error) {
	return am.ProcessStatementCtx(context.Background(), stmt)
}

// ProcessStatementCtx is ProcessStatement honoring cancellation and
// deadlines through the MNSA analysis, statistic builds and the periodic
// maintenance pass. With a Guard installed, statistics failures degrade the
// statement instead of failing it: the degraded reasons are set on the
// session before optimization (so the executed plan is tagged and bypasses
// the plan cache) and cleared at the next statement boundary, which is what
// lets recovered statistics produce healthy plans again without any explicit
// reset.
func (am *AutoManager) ProcessStatementCtx(ctx context.Context, stmt query.Statement) (*executor.Result, error) {
	mgr := am.sess.Manager()
	mgr.Tick()
	am.StatementsRun++
	reg := am.sess.Obs()
	reg.Counter("auto.statements").Inc()

	// Each statement starts with a clean degraded slate: degradation is a
	// per-statement condition, re-derived from what MNSA can(not) build now.
	am.sess.ClearDegraded()

	cfg := am.MNSA
	if cfg.Builder == nil && am.Guard != nil {
		cfg.Builder = am.Guard
	}
	if q, ok := stmt.(*query.Select); ok {
		r, err := RunMNSACtx(ctx, am.sess, q, cfg)
		if err != nil {
			return nil, err
		}
		if r.Degraded() {
			am.DegradedStatements++
			reg.Counter("degraded.statements").Inc()
		}
	}
	res, err := am.ex.RunStatement(am.sess, stmt)
	if err != nil {
		return nil, err
	}
	am.TotalExecCost += res.Cost

	am.stmtCount++
	if am.MaintenanceEvery > 0 && am.stmtCount%am.MaintenanceEvery == 0 {
		if am.Guard != nil {
			if _, err := am.Guard.MaintainCtx(ctx, am.Policy); err != nil {
				return nil, err
			}
		} else if _, err := mgr.RunMaintenanceCtx(ctx, am.Policy); err != nil {
			return nil, err
		}
		am.MaintenanceRuns++
		reg.Counter("auto.maintenance_runs").Inc()
	}
	return res, nil
}

// TuneReport summarizes an offline tuning pass.
type TuneReport struct {
	// MNSA is the per-query creation phase outcome.
	MNSA *WorkloadResult
	// Shrink is the Shrinking Set phase outcome (nil if skipped).
	Shrink *ShrinkResult
	// DropListed lists the statistics moved to the drop-list by shrinking.
	DropListed []stats.ID
}

// Degraded reports whether the creation phase ran degraded (some statistic
// builds failed under a resilience Builder).
func (r *TuneReport) Degraded() bool { return r.MNSA != nil && r.MNSA.Degraded() }

// BuildFailures returns the creation phase's build failures, if any.
func (r *TuneReport) BuildFailures() []BuildFailure {
	if r.MNSA == nil {
		return nil
	}
	return r.MNSA.BuildFailures
}

// OfflineTune implements the conservative §6 policy: an offline process runs
// MNSA over every query of the workload, then the Shrinking Set algorithm
// eliminates non-essential statistics, which are moved to the drop-list
// (physical deletion remains a separate policy action). eq nil defaults to
// execution-tree equivalence as in Figure 2.
func OfflineTune(sess *optimizer.Session, queries []*query.Select, cfg Config, eq Equivalence) (*TuneReport, error) {
	return OfflineTuneCtx(context.Background(), sess, queries, cfg, eq)
}

// OfflineTuneCtx is OfflineTune honoring cancellation in both phases.
func OfflineTuneCtx(ctx context.Context, sess *optimizer.Session, queries []*query.Select, cfg Config, eq Equivalence) (*TuneReport, error) {
	if eq == nil {
		eq = ExecutionTree{}
	}
	rep := &TuneReport{}
	wr, err := RunMNSAWorkloadCtx(ctx, sess, queries, cfg)
	if err != nil {
		return nil, err
	}
	rep.MNSA = wr

	sr, err := ShrinkingSetCtx(ctx, sess, queries, nil, eq)
	if err != nil {
		return nil, err
	}
	rep.Shrink = sr
	mgr := sess.Manager()
	for _, id := range sr.Removed {
		if mgr.AddToDropList(id) {
			rep.DropListed = append(rep.DropListed, id)
		}
	}
	return rep, nil
}
