package core

import (
	"context"
	"fmt"

	"autostats/internal/obs"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/resilience"
	"autostats/internal/stats"
)

// Config parameterizes MNSA (Figure 1) and its MNSA/D variant (§5.1).
type Config struct {
	// T is the t-optimizer-cost equivalence threshold in percent. The
	// paper's experiments use 20 (§8.2: "a value of t = 20% is a
	// conservative choice").
	T float64
	// Epsilon pins the extreme selectivities of P_low and P_high. MNSA
	// guarantees essential-set inclusion only for predicate selectivities
	// within [ε, 1−ε], so it should be small; the paper uses 0.0005.
	Epsilon float64
	// CandidateFn proposes candidate statistics for a query
	// (CandidateStats by default; SingleColumnCandidates or ExhaustiveStats
	// for the experiment variants).
	CandidateFn func(*query.Select) []Candidate
	// MinTableRows, when positive, creates candidates on tables of at most
	// this many rows without sensitivity analysis (§4.3: "creating
	// candidate statistics on small tables is inexpensive, [so] MNSA can be
	// augmented with a threshold").
	MinTableRows int
	// Drop enables MNSA/D: after each statistic is created, if the plan is
	// unchanged the statistic is heuristically drop-listed.
	Drop bool
	// DropEquivalence decides "unchanged" for MNSA/D (execution-tree by
	// default).
	DropEquivalence Equivalence
	// UseAging dampens re-creation of recently dropped statistics (§6)
	// unless the query's default plan cost exceeds AgingCostThreshold.
	UseAging bool
	// AgingCostThreshold exempts expensive queries from aging damping so
	// their optimization is not adversely affected (§6).
	AgingCostThreshold float64
	// NextStatFn overrides the next-statistic heuristic (§4.2's
	// most-expensive-operator rule by default). Used by ablation benches.
	NextStatFn NextStatFunc
	// Builder, when non-nil, replaces direct manager calls for on-the-fly
	// statistic builds — the resilience layer's Guard goes here. With a
	// Builder installed MNSA runs degraded-tolerant: a unit that cannot be
	// built (circuit breaker open, build timeout, build failure) no longer
	// aborts the analysis. The failure is recorded in Result.BuildFailures,
	// the affected selectivity variables stay on the default magic numbers
	// (exactly the fallback §4 pins them to), and the session is marked
	// degraded so subsequent plans are tagged and kept out of the plan
	// cache. Cancellation still aborts.
	Builder StatBuilder
}

// StatBuilder is the seam between MNSA's on-the-fly statistic creation and
// the statistics layer. *stats.Manager satisfies it directly; the
// resilience.Guard wraps it with retry, circuit breaking and per-build
// timeouts.
type StatBuilder interface {
	EnsureCtx(ctx context.Context, table string, cols []string) (*stats.Statistic, bool, error)
}

var (
	_ StatBuilder = (*stats.Manager)(nil)
	_ StatBuilder = (*resilience.Guard)(nil)
)

// NextStatFunc picks the next build unit from the remaining candidates given
// the current default-magic-number plan and the missing variable IDs.
type NextStatFunc func(p *optimizer.Plan, cands []Candidate, mgr *stats.Manager, consumed map[stats.ID]bool, missing []int) []Candidate

// mnsaMetrics bundles the counters one MNSA run reports: how often the loop
// ran, how many optimizer calls it cost (the paper's overhead metric), how
// many extreme-plan re-optimizations and t-equivalence checks it performed,
// and how many build units it actually consumed.
type mnsaMetrics struct {
	runs           *obs.Counter
	iterations     *obs.Counter
	optimizerCalls *obs.Counter
	extremeReopts  *obs.Counter
	tequivChecks   *obs.Counter
	ageSkips       *obs.Counter
	droplistAdds   *obs.Counter
	resurrections  *obs.Counter
	buildFailures  *obs.Counter
	degradedRuns   *obs.Counter
	unitsConsumed  *obs.FloatCounter
}

func newMNSAMetrics(reg *obs.Registry) mnsaMetrics {
	return mnsaMetrics{
		runs:           reg.Counter("mnsa.runs"),
		iterations:     reg.Counter("mnsa.iterations"),
		optimizerCalls: reg.Counter("mnsa.optimizer_calls"),
		extremeReopts:  reg.Counter("mnsa.extreme_reopts"),
		tequivChecks:   reg.Counter("mnsa.tequiv.checks"),
		ageSkips:       reg.Counter("mnsa.age_skips"),
		droplistAdds:   reg.Counter("mnsa.droplist.adds"),
		resurrections:  reg.Counter("mnsa.resurrections"),
		buildFailures:  reg.Counter("resilience.mnsa.build_failures"),
		degradedRuns:   reg.Counter("degraded.mnsa_runs"),
		unitsConsumed:  reg.FloatCounter("mnsa.units_consumed"),
	}
}

// DefaultConfig returns the paper's experimental configuration: t = 20 %,
// ε = 0.0005, §7.1 candidates, no dropping.
func DefaultConfig() Config {
	return Config{
		T:               20,
		Epsilon:         0.0005,
		CandidateFn:     CandidateStats,
		DropEquivalence: ExecutionTree{},
	}
}

// Termination describes why an MNSA run stopped.
type Termination string

// Termination reasons.
const (
	// TermEquivalent: P_low and P_high became t-optimizer-cost equivalent —
	// the existing statistics include an essential set (the success path).
	TermEquivalent Termination = "equivalent"
	// TermNoMissing: every selectivity variable is covered by statistics.
	TermNoMissing Termination = "no-missing-vars"
	// TermNoCandidates: candidates are exhausted (step 9 of Figure 1).
	TermNoCandidates Termination = "no-candidates"
)

// Result reports one MNSA run.
type Result struct {
	// Created lists statistics physically built (or resurrected), in order.
	Created []stats.ID
	// DropListed lists statistics MNSA/D identified as non-essential.
	DropListed []stats.ID
	// AgeSkipped lists candidates whose creation aging suppressed.
	AgeSkipped []stats.ID
	// Resurrected lists drop-listed statistics found load-bearing for this
	// query's final plan and removed from the drop-list (§5: "if the
	// statistic s is subsequently found to be useful for another query ...
	// it can simply be removed from the drop-list").
	Resurrected []stats.ID
	// OptimizerCalls counts full optimizations performed (the paper's
	// overhead metric: three calls per created statistic).
	OptimizerCalls int
	// Iterations counts loop iterations.
	Iterations int
	// TerminatedBy records the loop exit reason.
	TerminatedBy Termination
	// BuildFailures lists statistics the run wanted but could not build
	// (only populated in degraded-tolerant mode, i.e. with Config.Builder
	// installed). The run is degraded when non-empty: the affected
	// selectivity variables were planned on default magic numbers.
	BuildFailures []BuildFailure
}

// Degraded reports whether the run could not build every statistic it
// wanted.
func (r *Result) Degraded() bool { return len(r.BuildFailures) > 0 }

// BuildFailure records one statistic a degraded-tolerant MNSA run could not
// build, with the resilience classification of why ("breaker-open",
// "timeout", "transient", "error") and the underlying cause.
type BuildFailure struct {
	ID     stats.ID
	Reason string
	Err    error
}

// RunMNSA creates statistics for q per Figure 1: repeatedly test whether the
// current statistics include an essential set via magic number sensitivity
// analysis, and if not, build the statistic most likely to matter (the
// most-expensive-operator heuristic of §4.2). Join-column statistics are
// created in dependent pairs.
func RunMNSA(sess *optimizer.Session, q *query.Select, cfg Config) (*Result, error) {
	return RunMNSACtx(context.Background(), sess, q, cfg)
}

// RunMNSACtx is RunMNSA honoring cancellation and deadlines: ctx is checked
// at every loop iteration and flows into each statistic build, so a canceled
// analysis stops at the next boundary with manager state reflecting exactly
// the builds that completed (each build is individually atomic).
func RunMNSACtx(ctx context.Context, sess *optimizer.Session, q *query.Select, cfg Config) (*Result, error) {
	if cfg.T <= 0 {
		cfg.T = 20
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.0005
	}
	if cfg.CandidateFn == nil {
		cfg.CandidateFn = CandidateStats
	}
	if cfg.DropEquivalence == nil {
		cfg.DropEquivalence = ExecutionTree{}
	}
	mgr := sess.Manager()
	reg := sess.Obs()
	met := newMNSAMetrics(reg)
	met.runs.Inc()
	sp := reg.StartSpan("mnsa.run", map[string]any{"sql": q.SQL()})
	res := &Result{TerminatedBy: TermNoCandidates}
	defer func() {
		if res.Degraded() {
			met.degradedRuns.Inc()
		}
		sp.End(map[string]any{
			"created":         len(res.Created),
			"drop_listed":     len(res.DropListed),
			"optimizer_calls": res.OptimizerCalls,
			"terminated_by":   string(res.TerminatedBy),
			"build_failures":  len(res.BuildFailures),
		})
	}()

	// Statistic builds go through the configured Builder; with one installed
	// (the resilience Guard) build failures degrade the analysis instead of
	// failing it: the variables the statistic would have covered stay pinned
	// on the default magic numbers — the same fallback the sensitivity
	// analysis itself reasons about — and the session is marked so the plans
	// it produces are tagged Degraded. ensure returns ok=false for a
	// tolerated failure; cancellation always propagates.
	builder, tolerant := StatBuilder(mgr), false
	if cfg.Builder != nil {
		builder, tolerant = cfg.Builder, true
	}
	ensure := func(c Candidate) (ok bool, err error) {
		s, built, err := builder.EnsureCtx(ctx, c.Table, c.Columns)
		if err != nil {
			if !tolerant || ctx.Err() != nil {
				return false, fmt.Errorf("core: creating %s: %w", c.ID(), err)
			}
			reason := resilience.Reason(err)
			res.BuildFailures = append(res.BuildFailures, BuildFailure{ID: c.ID(), Reason: reason, Err: err})
			met.buildFailures.Inc()
			sess.MarkDegraded("stats-build:" + reason)
			return false, nil
		}
		if built {
			met.unitsConsumed.Add(s.BuildCost)
		}
		return true, nil
	}

	// consumed tracks candidates no longer available this run (built,
	// age-skipped, or already existing).
	cands := cfg.CandidateFn(q)
	consumed := make(map[stats.ID]bool, len(cands))

	// Small-table shortcut: build those candidates outright.
	if cfg.MinTableRows > 0 {
		for _, c := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			td, err := mgr.Database().Table(c.Table)
			if err != nil {
				return nil, err
			}
			if td.RowCount() <= cfg.MinTableRows && !mgr.Has(c.ID()) {
				ok, err := ensure(c)
				if err != nil {
					return nil, err
				}
				consumed[c.ID()] = true
				if ok {
					res.Created = append(res.Created, c.ID())
				}
			}
		}
	}

	sess.ClearOverrides()
	defer sess.ClearOverrides()

	p, err := sess.Optimize(q) // step 2: plan with default magic numbers
	if err != nil {
		return nil, err
	}
	res.OptimizerCalls++
	met.optimizerCalls.Inc()

	// finish resurrects drop-listed statistics that this query's final plan
	// depends on (§5): hide each one in turn and re-optimize; if the plan
	// degrades beyond the t threshold, the statistic is useful after all and
	// leaves the drop-list. t-optimizer-cost (not execution-tree) keeps the
	// rescue targeted: a cosmetic plan change is not worth re-maintaining a
	// statistic, a t-significant cost regression is.
	finish := func(final *optimizer.Plan) (*Result, error) {
		if !cfg.Drop {
			return res, nil
		}
		dbName := mgr.Database().Name
		defer sess.ClearIgnored()
		for _, id := range final.UsedStats {
			if !mgr.IsDropListed(id) {
				continue
			}
			if err := sess.IgnoreStatisticsSubset(dbName, []stats.ID{id}); err != nil {
				return nil, err
			}
			probe, err := sess.Optimize(q)
			if err != nil {
				return nil, err
			}
			sess.ClearIgnored()
			res.OptimizerCalls++
			met.optimizerCalls.Inc()
			// Rescue when the statistic's absence changes the execution
			// tree. Estimated-cost deltas are not a usable signal here:
			// hiding a statistic swaps histogram estimates for magic
			// numbers, moving the estimate in either direction regardless
			// of whether the plan materially changed.
			if !(ExecutionTree{}).Equivalent(probe, final) {
				mgr.RemoveFromDropList(id)
				res.Resurrected = append(res.Resurrected, id)
				met.resurrections.Inc()
			}
		}
		return res, nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations++
		met.iterations.Inc()
		// Step 4: selectivity variables forced onto magic numbers.
		missing := sess.MissingStatVars(q)
		if len(missing) == 0 {
			res.TerminatedBy = TermNoMissing
			return finish(p)
		}
		// Steps 5-6: the extreme plans.
		low := make(map[int]float64, len(missing))
		high := make(map[int]float64, len(missing))
		for _, v := range missing {
			low[v] = cfg.Epsilon
			high[v] = 1 - cfg.Epsilon
		}
		sess.SetSelectivityOverrides(low)
		pLow, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		sess.SetSelectivityOverrides(high)
		pHigh, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		sess.ClearOverrides()
		res.OptimizerCalls += 2
		met.optimizerCalls.Add(2)
		met.extremeReopts.Add(2)
		// Step 7: t-optimizer-cost equivalence of the extremes implies the
		// existing set includes an essential set (by cost monotonicity).
		met.tequivChecks.Inc()
		if (TOptimizerCost{T: cfg.T}).Equivalent(pLow, pHigh) {
			res.TerminatedBy = TermEquivalent
			return finish(p)
		}
		// Step 8: pick the next statistic(s) from the default-magic plan.
		nextFn := cfg.NextStatFn
		if nextFn == nil {
			nextFn = findNextStatToBuild
		}
		// Step 10: build the unit (a single statistic, or a dependent pair
		// for join columns). When aging suppresses the entire unit nothing
		// changed — the plan, the missing variables and the extremes are all
		// as before — so re-optimizing would waste a call and re-testing the
		// extremes would loop forever on the same answer; instead keep
		// picking until something is actually built or candidates run out.
		var builtIDs []stats.ID
		for len(builtIDs) == 0 {
			unit := nextFn(p, cands, mgr, consumed, missing)
			if len(unit) == 0 {
				res.TerminatedBy = TermNoCandidates
				return finish(p)
			}
			for _, c := range unit {
				consumed[c.ID()] = true
				if cfg.UseAging && mgr.RecentlyDropped(c.ID()) && p.Cost() <= cfg.AgingCostThreshold {
					res.AgeSkipped = append(res.AgeSkipped, c.ID())
					met.ageSkips.Inc()
					continue
				}
				ok, err := ensure(c)
				if err != nil {
					return nil, err
				}
				if !ok {
					// Tolerated build failure: the candidate is consumed (no
					// point re-picking it this run) but nothing was built, so
					// the loop keeps looking for another unit. If everything
					// fails, the run terminates by candidate exhaustion with
					// the missing variables still on magic numbers.
					continue
				}
				res.Created = append(res.Created, c.ID())
				builtIDs = append(builtIDs, c.ID())
			}
		}
		// Steps 11-12: re-optimize with default magic numbers.
		pNew, err := sess.Optimize(q)
		if err != nil {
			return nil, err
		}
		res.OptimizerCalls++
		met.optimizerCalls.Inc()
		// MNSA/D (§5.1): if creating the statistic left the plan
		// equivalent, heuristically mark it non-essential.
		if cfg.Drop && len(builtIDs) > 0 && cfg.DropEquivalence.Equivalent(pNew, p) {
			for _, id := range builtIDs {
				if mgr.AddToDropList(id) {
					res.DropListed = append(res.DropListed, id)
					met.droplistAdds.Inc()
				}
			}
		}
		p = pNew
	}
}

// RunMNSAD is RunMNSA with non-essential statistic detection enabled —
// Magic Number Sensitivity Analysis with Drop (§5.1).
func RunMNSAD(sess *optimizer.Session, q *query.Select, cfg Config) (*Result, error) {
	cfg.Drop = true
	return RunMNSA(sess, q, cfg)
}

// WorkloadResult aggregates MNSA runs over a workload.
type WorkloadResult struct {
	PerQuery       []*Result
	Created        []stats.ID
	DropListed     []stats.ID
	OptimizerCalls int
	// BuildFailures aggregates the per-query build failures of a
	// degraded-tolerant run; the workload pass is degraded when non-empty.
	BuildFailures []BuildFailure
}

// Degraded reports whether any query of the workload ran degraded.
func (wr *WorkloadResult) Degraded() bool { return len(wr.BuildFailures) > 0 }

// RunMNSAWorkload invokes MNSA for each query in order (§4.3: "a sufficient
// set of statistics for a workload can be obtained by invoking MNSA for each
// query in the workload"). Statistics accumulate in the session's manager.
func RunMNSAWorkload(sess *optimizer.Session, queries []*query.Select, cfg Config) (*WorkloadResult, error) {
	return RunMNSAWorkloadCtx(context.Background(), sess, queries, cfg)
}

// RunMNSAWorkloadCtx is RunMNSAWorkload honoring cancellation: ctx is
// checked between workload queries (and inside each per-query analysis), so
// cancellation stops the pass at the next boundary with the manager holding
// exactly the statistics already built.
func RunMNSAWorkloadCtx(ctx context.Context, sess *optimizer.Session, queries []*query.Select, cfg Config) (*WorkloadResult, error) {
	wr := &WorkloadResult{}
	// Snapshot the drop-list at entry: the report must cover what THIS run
	// drop-listed, not entries inherited from earlier tuning passes.
	pre := map[stats.ID]bool{}
	for _, id := range sess.Manager().DropListIDs() {
		pre[id] = true
	}
	seen := map[stats.ID]bool{}
	for _, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := RunMNSACtx(ctx, sess, q, cfg)
		if err != nil {
			return nil, err
		}
		wr.PerQuery = append(wr.PerQuery, r)
		wr.OptimizerCalls += r.OptimizerCalls
		wr.BuildFailures = append(wr.BuildFailures, r.BuildFailures...)
		for _, id := range r.Created {
			if !seen[id] {
				seen[id] = true
				wr.Created = append(wr.Created, id)
			}
		}
	}
	// The final drop-list reflects later resurrections, so read it from the
	// manager rather than accumulating per-query — minus the entry snapshot.
	for _, id := range sess.Manager().DropListIDs() {
		if !pre[id] {
			wr.DropListed = append(wr.DropListed, id)
		}
	}
	return wr, nil
}
