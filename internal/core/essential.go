package core

import (
	"fmt"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/stats"
)

// planWithVisible optimizes q as if only the statistics in visible existed,
// by ignoring every other statistic in the manager (the §7.2 interface).
func planWithVisible(sess *optimizer.Session, q *query.Select, visible map[stats.ID]bool) (*optimizer.Plan, error) {
	mgr := sess.Manager()
	var ignore []stats.ID
	for _, st := range mgr.All() {
		if !visible[st.ID] {
			ignore = append(ignore, st.ID)
		}
	}
	if err := sess.IgnoreStatisticsSubset(mgr.Database().Name, ignore); err != nil {
		return nil, err
	}
	defer sess.ClearIgnored()
	return sess.Optimize(q)
}

// IsEssentialSet verifies Definition 1 directly: S (a subset of the
// candidate set C, all of which must already be built in the manager) is an
// essential set for q iff S is equivalent to C and no single-statistic
// removal preserves equivalence. It returns a human-readable reason when the
// check fails.
//
// This is an exponential-free but optimizer-call-heavy check (1 + 1 + |S|
// optimizations) intended for validation and tests, not production tuning —
// production uses MNSA + Shrinking Set, which avoid building C at all.
func IsEssentialSet(sess *optimizer.Session, q *query.Select, S, C []stats.ID, eq Equivalence) (bool, string, error) {
	mgr := sess.Manager()
	inC := map[stats.ID]bool{}
	for _, id := range C {
		if !mgr.Has(id) {
			return false, "", fmt.Errorf("core: candidate statistic %s is not built; Definition 1 requires the full candidate set", id)
		}
		inC[id] = true
	}
	inS := map[stats.ID]bool{}
	for _, id := range S {
		if !inC[id] {
			return false, fmt.Sprintf("%s is in S but not in the candidate set C", id), nil
		}
		inS[id] = true
	}

	planC, err := planWithVisible(sess, q, inC)
	if err != nil {
		return false, "", err
	}
	planS, err := planWithVisible(sess, q, inS)
	if err != nil {
		return false, "", err
	}
	if !eq.Equivalent(planS, planC) {
		return false, fmt.Sprintf("S is not %s-equivalent to C", eq.Name()), nil
	}
	// Minimality: removing any single statistic must break equivalence.
	// (Definition 1 demands no proper subset is equivalent; under the
	// monotone-information assumption of §3.3 it suffices to check the
	// maximal proper subsets S−{s}.)
	for _, id := range S {
		sub := map[stats.ID]bool{}
		for _, other := range S {
			if other != id {
				sub[other] = true
			}
		}
		planSub, err := planWithVisible(sess, q, sub)
		if err != nil {
			return false, "", err
		}
		if eq.Equivalent(planSub, planC) {
			return false, fmt.Sprintf("S−{%s} is still equivalent to C, so S is not minimal", id), nil
		}
	}
	return true, "", nil
}
