package core

import (
	"testing"

	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// querySelect shortens signatures in tests.
type querySelect = query.Select

func testDB(t testing.TB, z float64) *storage.Database {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Scale: 0.5, Z: z, Seed: 11})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return db
}

func newSession(t testing.TB, db *storage.Database) *optimizer.Session {
	t.Helper()
	return optimizer.NewSession(stats.NewManager(db, histogram.MaxDiff, 0))
}

func mustParse(t testing.TB, db *storage.Database, sql string) *querySelect {
	t.Helper()
	q, err := sqlparser.ParseSelect(db.Schema, sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return q
}

// TestExample3 reproduces Example 3 of §7.1 on an equivalent query shape:
// two join predicates between two tables plus three selection predicates on
// one of them. Candidates must include the per-table join multi-column
// statistics and the selection multi-column statistic, but not the pairwise
// sub-combinations.
func TestExample3(t *testing.T) {
	db := testDB(t, 0)
	// Shape of Q2 = SELECT * FROM R1, R2 WHERE R1.a=R2.b AND R1.c=R2.d AND
	// R1.e<100 AND R1.f>10 AND R1.g=25, mapped onto lineitem/partsupp which
	// share two joinable column pairs.
	q := mustParse(t, db, `SELECT * FROM lineitem, partsupp
		WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
		AND l_quantity < 30 AND l_discount > 0.02 AND l_linenumber = 2`)
	cands := CandidateStats(q)

	want := map[string]bool{
		// (a) single-column statistics on each relevant column.
		"lineitem(l_partkey)":    true,
		"lineitem(l_suppkey)":    true,
		"lineitem(l_quantity)":   true,
		"lineitem(l_discount)":   true,
		"lineitem(l_linenumber)": true,
		"partsupp(ps_partkey)":   true,
		"partsupp(ps_suppkey)":   true,
		// (b) one multi-column statistic per table on selection columns.
		"lineitem(l_discount,l_linenumber,l_quantity)": true,
		// (c) one multi-column statistic per table on join columns.
		"lineitem(l_partkey,l_suppkey)":   true,
		"partsupp(ps_partkey,ps_suppkey)": true,
	}
	got := map[string]bool{}
	for _, c := range cands {
		got[string(c.ID())] = true
	}
	for id := range want {
		if !got[id] {
			t.Errorf("missing expected candidate %s", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("unexpected candidate %s", id)
		}
	}
	// The pairwise selection sub-combinations must NOT be proposed.
	for _, bad := range []string{
		"lineitem(l_discount,l_quantity)",
		"lineitem(l_discount,l_linenumber)",
		"lineitem(l_linenumber,l_quantity)",
	} {
		if got[bad] {
			t.Errorf("candidate %s should not be proposed (Example 3)", bad)
		}
	}
	// Exhaustive must include those pairwise combinations.
	exGot := map[string]bool{}
	for _, c := range ExhaustiveStats(q) {
		exGot[string(c.ID())] = true
	}
	for _, id := range []string{
		"lineitem(l_discount,l_quantity)",
		"lineitem(l_linenumber,l_quantity)",
		"lineitem(l_discount,l_linenumber)",
	} {
		if !exGot[id] {
			t.Errorf("exhaustive should include %s", id)
		}
	}
	if len(ExhaustiveStats(q)) <= len(cands) {
		t.Errorf("exhaustive (%d) should exceed candidate (%d) count", len(ExhaustiveStats(q)), len(cands))
	}
}

// TestMNSABuildsFewerThanCandidates: MNSA should terminate having built a
// strict subset of the candidates on a typical selective query, and the
// resulting plan must be t-optimizer-cost equivalent to the plan with ALL
// candidates built.
func TestMNSAPrunesAndPreservesQuality(t *testing.T) {
	for _, z := range []float64{0, 2} {
		db := testDB(t, z)
		sess := newSession(t, db)
		q := mustParse(t, db, `SELECT * FROM lineitem, orders
			WHERE l_orderkey = o_orderkey AND l_shipdate < DATE 8500
			AND o_totalprice > 400000 AND l_quantity > 45`)
		cfg := DefaultConfig()
		res, err := RunMNSA(sess, q, cfg)
		if err != nil {
			t.Fatalf("z=%v: MNSA: %v", z, err)
		}
		cands := CandidateStats(q)
		if len(res.Created) == 0 {
			t.Fatalf("z=%v: MNSA built nothing; expected some statistics for a join query", z)
		}
		if len(res.Created) >= len(cands) {
			t.Errorf("z=%v: MNSA built %d of %d candidates; expected pruning", z, len(res.Created), len(cands))
		}
		planMNSA, err := sess.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}

		// Build everything on a fresh manager and compare.
		dbAll := testDB(t, z)
		sessAll := newSession(t, dbAll)
		for _, c := range cands {
			if _, err := sessAll.Manager().Create(c.Table, c.Columns); err != nil {
				t.Fatal(err)
			}
		}
		planAll, err := sessAll.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		eq := TOptimizerCost{T: cfg.T}
		if !eq.Equivalent(planMNSA, planAll) {
			t.Errorf("z=%v: MNSA plan cost %.1f vs all-candidates cost %.1f exceeds t=%v%%",
				z, planMNSA.Cost(), planAll.Cost(), cfg.T)
		}
		t.Logf("z=%v: built %d/%d stats, %d optimizer calls, terminated by %s",
			z, len(res.Created), len(cands), res.OptimizerCalls, res.TerminatedBy)
	}
}

// TestMNSAOptimizerCallOverhead checks §4.3's overhead bound: three
// optimizer calls per created statistic-unit plus the initial optimization
// and the final (terminating) sensitivity test.
func TestMNSAOptimizerCallOverhead(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	q := mustParse(t, db, `SELECT * FROM lineitem WHERE l_quantity > 45 AND l_discount < 0.02`)
	res, err := RunMNSA(sess, q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 initial + per iteration: 2 sensitivity + 1 re-optimization (the
	// last iteration has no re-optimization since it terminates).
	maxCalls := 1 + 3*res.Iterations
	if res.OptimizerCalls > maxCalls {
		t.Errorf("optimizer calls %d exceed bound %d (iterations %d)", res.OptimizerCalls, maxCalls, res.Iterations)
	}
}

// TestMNSADDropListsNonEssential: a query whose plan never changes after the
// first few statistics should yield drop-listed statistics under MNSA/D, and
// the drop-listed set must not be maintained.
func TestMNSADDropListsNonEssential(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	q := mustParse(t, db, `SELECT * FROM lineitem, orders, customer
		WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
		AND l_quantity > 45 AND c_acctbal > 9000 AND o_totalprice > 400000`)
	res, err := RunMNSAD(sess, q, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("created %d, drop-listed %d", len(res.Created), len(res.DropListed))
	for _, id := range res.DropListed {
		st := mgr.Get(id)
		if st == nil {
			t.Errorf("drop-listed statistic %s does not exist", id)
			continue
		}
		if !st.InDropList {
			t.Errorf("statistic %s reported drop-listed but not marked", id)
		}
	}
	if got := len(mgr.Maintained()) + len(mgr.DropList()); got != len(mgr.All()) {
		t.Errorf("maintained+droplist=%d != all=%d", got, len(mgr.All()))
	}
}

// TestShrinkingSetProducesEssentialSet runs MNSA then Shrinking Set and
// verifies the Definition 1 properties of the survivor set directly against
// the full candidate set.
func TestShrinkingSetProducesEssentialSet(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	q := mustParse(t, db, `SELECT * FROM lineitem, orders
		WHERE l_orderkey = o_orderkey AND l_shipdate < DATE 8300 AND o_totalprice > 500000`)

	// Build ALL candidates so Definition 1 can be checked exactly.
	cands := CandidateStats(q)
	var cIDs []stats.ID
	for _, c := range cands {
		if _, err := mgr.Create(c.Table, c.Columns); err != nil {
			t.Fatal(err)
		}
		cIDs = append(cIDs, c.ID())
	}

	eq := ExecutionTree{}
	sr, err := ShrinkingSet(sess, []*querySelect{q}, nil, eq)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("kept %v, removed %d", sr.Kept, len(sr.Removed))
	ok, reason, err := IsEssentialSet(sess, q, sr.Kept, cIDs, eq)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("shrinking-set result is not an essential set: %s", reason)
	}
}

// TestShrinkingSetWorstCaseCallBound: |S|*|W| plus baselines.
func TestShrinkingSetCallBound(t *testing.T) {
	db := testDB(t, 0)
	sess := newSession(t, db)
	q1 := mustParse(t, db, `SELECT * FROM lineitem WHERE l_quantity > 40`)
	q2 := mustParse(t, db, `SELECT * FROM orders WHERE o_totalprice < 1000`)
	for _, c := range append(CandidateStats(q1), CandidateStats(q2)...) {
		if _, err := sess.Manager().Create(c.Table, c.Columns); err != nil {
			t.Fatal(err)
		}
	}
	n := len(sess.Manager().All())
	sr, err := ShrinkingSet(sess, []*querySelect{q1, q2}, nil, ExecutionTree{})
	if err != nil {
		t.Fatal(err)
	}
	if max := n*2 + 2; sr.OptimizerCalls > max {
		t.Errorf("optimizer calls %d exceed worst case bound %d", sr.OptimizerCalls, max)
	}
}

// execQueries optimizes and executes all queries, returning total cost.
func execQueries(t testing.TB, db *storage.Database, sess *optimizer.Session, queries []*querySelect) float64 {
	t.Helper()
	ex := executor.New(db)
	total := 0.0
	for _, q := range queries {
		plan, err := sess.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.Run(plan)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Cost
	}
	return total
}
