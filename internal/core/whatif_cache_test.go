package core

import (
	"testing"

	"autostats/internal/optimizer"
	"autostats/internal/workload"
)

// TestShrinkingProbesDoNotPollutePlanCache is the what-if pollution
// regression test: a tuning run's ignore-subset probes optimize under
// hypothetical statistics configurations, so they must bypass the plan
// cache entirely — no insertions (which would evict the production
// workload's plans) and no miss-count inflation (which would wreck the hit
// rate the cache is sized by). Probes surface as cache bypasses instead.
func TestShrinkingProbesDoNotPollutePlanCache(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	cache := optimizer.NewPlanCache(256)
	sess.SetPlanCache(cache)

	w, err := workload.Generate(db, workload.Config{Count: 20, Complexity: workload.Complex, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	queries := w.Queries()
	for _, c := range WorkloadCandidates(queries, CandidateStats) {
		if _, err := mgr.Create(c.Table, c.Columns); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the cache with the production workload.
	for _, q := range queries {
		if _, err := sess.Optimize(q); err != nil {
			t.Fatal(err)
		}
	}
	warm := cache.Stats()
	if warm.Size == 0 {
		t.Fatal("warm-up inserted no plans; the test needs a populated cache")
	}

	sr, err := ShrinkingSet(sess, queries, nil, ExecutionTree{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.OptimizerCalls <= len(queries) {
		t.Fatalf("tuner made %d optimizer calls; expected probe rounds beyond the %d baselines", sr.OptimizerCalls, len(queries))
	}

	after := cache.Stats()
	if after.Size != warm.Size {
		t.Errorf("tuner changed the cache population: %d -> %d entries", warm.Size, after.Size)
	}
	if after.Evictions != warm.Evictions {
		t.Errorf("tuner evicted cached workload plans: evictions %d -> %d", warm.Evictions, after.Evictions)
	}
	if after.Misses != warm.Misses {
		t.Errorf("probes were counted as cache misses: %d -> %d", warm.Misses, after.Misses)
	}
	// The baseline optimizations ran with no ignored statistics against the
	// warm cache, so they hit; every ignore-subset probe is a bypass.
	if after.Hits <= warm.Hits {
		t.Errorf("baseline re-optimizations did not hit the warm cache: hits %d -> %d", warm.Hits, after.Hits)
	}
	bypasses := sess.Obs().Snapshot().Counters["degraded.plancache_bypasses"]
	probes := sr.OptimizerCalls - len(queries)
	if bypasses != int64(probes) {
		t.Errorf("plancache_bypasses = %d, want one per probe (%d)", bypasses, probes)
	}
}
