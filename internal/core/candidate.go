// Package core implements the paper's contribution: the candidate-statistics
// algorithm (§7.1) with its exhaustive baseline, the equivalence notions and
// essential-set definitions (§3), Magic Number Sensitivity Analysis (§4,
// Figure 1), MNSA/D (§5.1), the Shrinking Set algorithm (§5.2, Figure 2),
// and the §6 policy engine that ties them into automatic statistics
// management.
package core

import (
	"sort"
	"strings"

	"autostats/internal/query"
	"autostats/internal/stats"
)

// Candidate names a statistic that may be worth building for a query.
type Candidate struct {
	Table   string
	Columns []string
}

// ID returns the candidate's statistic ID.
func (c Candidate) ID() stats.ID { return stats.MakeID(c.Table, c.Columns) }

// relevantColumns classifies the statistics-relevant columns of a query by
// role. Per §3.1 (footnote 1), ORDER BY-only columns are NOT relevant:
// statistics on them cannot affect cost estimation or plan choice.
type relevantColumns struct {
	selection map[string][]string // table -> selection-predicate columns
	join      map[string][]string // table -> join columns
	group     map[string][]string // table -> grouping columns
}

func classifyColumns(q *query.Select) relevantColumns {
	rc := relevantColumns{
		selection: map[string][]string{},
		join:      map[string][]string{},
		group:     map[string][]string{},
	}
	add := func(m map[string][]string, c query.ColumnRef) {
		t := strings.ToLower(c.Table)
		col := strings.ToLower(c.Column)
		for _, existing := range m[t] {
			if existing == col {
				return
			}
		}
		m[t] = append(m[t], col)
	}
	for _, f := range q.Filters {
		add(rc.selection, f.Col)
	}
	for _, j := range q.Joins {
		add(rc.join, j.Left)
		add(rc.join, j.Right)
	}
	for _, g := range q.GroupingColumns() {
		add(rc.group, g)
	}
	for _, m := range []map[string][]string{rc.selection, rc.join, rc.group} {
		for t := range m {
			sort.Strings(m[t])
		}
	}
	return rc
}

// allColumns returns the union of relevant columns per table.
func (rc relevantColumns) allColumns() map[string][]string {
	out := map[string][]string{}
	seen := map[string]map[string]bool{}
	for _, m := range []map[string][]string{rc.selection, rc.join, rc.group} {
		for t, cols := range m {
			if seen[t] == nil {
				seen[t] = map[string]bool{}
			}
			for _, c := range cols {
				if !seen[t][c] {
					seen[t][c] = true
					out[t] = append(out[t], c)
				}
			}
		}
	}
	for t := range out {
		sort.Strings(out[t])
	}
	return out
}

// CandidateStats implements the §7.1 Candidate Statistics algorithm. For a
// query it proposes:
//
//	(a) a single-column statistic on each relevant column;
//	(b) one multi-column statistic per table on the selection-predicate
//	    columns;
//	(c) one multi-column statistic per table on the join columns;
//	(d) one multi-column statistic per table on the GROUP BY columns.
//
// Column lists inside multi-column candidates are sorted by name so lookups
// are canonical. Example 3 of the paper is reproduced by TestExample3.
func CandidateStats(q *query.Select) []Candidate {
	rc := classifyColumns(q)
	var out []Candidate
	seen := map[stats.ID]bool{}
	emit := func(table string, cols []string) {
		if len(cols) == 0 {
			return
		}
		c := Candidate{Table: table, Columns: append([]string(nil), cols...)}
		if id := c.ID(); !seen[id] {
			seen[id] = true
			out = append(out, c)
		}
	}
	// (a) single-column statistics on every relevant column.
	all := rc.allColumns()
	tables := sortedKeys(all)
	for _, t := range tables {
		for _, c := range all[t] {
			emit(t, []string{c})
		}
	}
	// (b)-(d) one multi-column statistic per table per role, when the role
	// has at least two columns on that table.
	for _, role := range []map[string][]string{rc.selection, rc.join, rc.group} {
		for _, t := range sortedKeys(role) {
			if cols := role[t]; len(cols) >= 2 {
				emit(t, cols)
			}
		}
	}
	return out
}

// SingleColumnCandidates restricts candidates to single-column statistics on
// relevant columns — the §8.2 variant experiment ("the candidate statistics
// considered were only single-column statistics on relevant columns").
func SingleColumnCandidates(q *query.Select) []Candidate {
	var out []Candidate
	for _, c := range CandidateStats(q) {
		if len(c.Columns) == 1 {
			out = append(out, c)
		}
	}
	return out
}

// exhaustiveMaxWidth caps subset width for the Exhaustive baseline so its
// combinatorial growth stays runnable; §7.1 notes the full space is "very
// large", which is exactly what Figure 3 measures against.
const exhaustiveMaxWidth = 4

// ExhaustiveStats is the Figure 3 baseline: every syntactically relevant
// statistic — all single-column statistics plus a multi-column statistic on
// EVERY subset (size ≥ 2, up to exhaustiveMaxWidth columns) of each table's
// relevant columns. For Example 3 this includes the (e,f), (f,g), (e,g)
// statistics that CandidateStats deliberately skips.
func ExhaustiveStats(q *query.Select) []Candidate {
	all := classifyColumns(q).allColumns()
	var out []Candidate
	seen := map[stats.ID]bool{}
	for _, t := range sortedKeys(all) {
		cols := all[t]
		n := len(cols)
		for mask := 1; mask < 1<<n; mask++ {
			var subset []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					subset = append(subset, cols[i])
				}
			}
			if len(subset) > exhaustiveMaxWidth {
				continue
			}
			c := Candidate{Table: t, Columns: subset}
			if id := c.ID(); !seen[id] {
				seen[id] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Columns) != len(out[j].Columns) {
			return len(out[i].Columns) < len(out[j].Columns)
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// WorkloadCandidates returns the union of per-query candidates across the
// workload (Definition 2's candidate set), deduplicated, in first-seen
// order.
func WorkloadCandidates(queries []*query.Select, fn func(*query.Select) []Candidate) []Candidate {
	var out []Candidate
	seen := map[stats.ID]bool{}
	for _, q := range queries {
		for _, c := range fn(q) {
			if id := c.ID(); !seen[id] {
				seen[id] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func sortedKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
