package core

import (
	"reflect"
	"testing"

	"autostats/internal/optimizer"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

var tuningWorkloadSQL = []string{
	"SELECT * FROM lineitem WHERE l_quantity > 45",
	"SELECT * FROM orders WHERE o_totalprice < 1000",
	"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_discount > 0.05",
	"SELECT * FROM customer WHERE c_acctbal > 9000",
	"SELECT * FROM lineitem, partsupp WHERE l_partkey = ps_partkey AND l_quantity < 5",
	"SELECT * FROM orders, customer WHERE o_custkey = c_custkey AND o_totalprice > 50000",
}

func tuningWorkload(t testing.TB, db *storage.Database) []*querySelect {
	t.Helper()
	qs := make([]*querySelect, 0, len(tuningWorkloadSQL))
	for _, sql := range tuningWorkloadSQL {
		qs = append(qs, mustParse(t, db, sql))
	}
	return qs
}

// TestParallelP1IdenticalToSerial: with parallelism 1 the parallel driver
// must reproduce the serial driver exactly — same structs, same order, same
// counters — on an identical fresh database.
func TestParallelP1IdenticalToSerial(t *testing.T) {
	dbA, dbB := testDB(t, 2), testDB(t, 2)
	sessA, sessB := newSession(t, dbA), newSession(t, dbB)
	cfg := DefaultConfig()
	cfg.Drop = true

	serial, err := RunMNSAWorkload(sessA, tuningWorkload(t, dbA), cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMNSAWorkloadParallel(sessB, tuningWorkload(t, dbB), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallelism=1 diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestParallelWorkloadInvariants: at higher parallelism the created set is
// schedule-dependent (a query running after more statistics exist may stop
// earlier), so exact set equality with serial only holds at p=1. What must
// hold at any parallelism: one result per query in input order, no duplicate
// creations, every reported creation present in the manager, and the created
// set drawn from the serial run's candidate space.
func TestParallelWorkloadInvariants(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	cfg := DefaultConfig()
	cfg.Drop = true

	queries := tuningWorkload(t, db)
	candidates := map[stats.ID]bool{}
	for _, c := range WorkloadCandidates(queries, cfg.CandidateFn) {
		candidates[c.ID()] = true
	}

	par, err := RunMNSAWorkloadParallel(sess, queries, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.PerQuery) != len(queries) {
		t.Fatalf("PerQuery has %d entries, want %d", len(par.PerQuery), len(queries))
	}
	dup := map[stats.ID]bool{}
	for _, id := range par.Created {
		if dup[id] {
			t.Errorf("statistic %s reported created twice", id)
		}
		dup[id] = true
		if !candidates[id] {
			t.Errorf("created statistic %s is outside the candidate space", id)
		}
		if !sess.Manager().Has(id) {
			t.Errorf("created statistic %s missing from the manager", id)
		}
	}
	if len(par.Created) == 0 {
		t.Error("expected the parallel run to create statistics")
	}
	calls := 0
	for _, r := range par.PerQuery {
		if r == nil {
			t.Fatal("nil per-query result")
		}
		calls += r.OptimizerCalls
	}
	if calls != par.OptimizerCalls {
		t.Errorf("OptimizerCalls %d != per-query sum %d", par.OptimizerCalls, calls)
	}
}

// TestParallelWithSharedPlanCache runs the parallel driver with a shared plan
// cache attached; under -race this doubles as the optimize-while-mutate
// stress test at the workload level.
func TestParallelWithSharedPlanCache(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	cache := optimizer.NewPlanCache(256)
	sess.SetPlanCache(cache)
	wr, err := RunMNSAWorkloadParallel(sess, tuningWorkload(t, db), DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr.Created) == 0 {
		t.Error("expected statistics to be created")
	}
	st := cache.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("plan cache saw no traffic during parallel tuning")
	}
}

// TestParallelDropListDelta: pre-existing drop-list entries must not be
// reported by either driver (regression for the snapshot-delta fix).
func TestParallelDropListDelta(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		db := testDB(t, 2)
		sess := newSession(t, db)
		mgr := sess.Manager()
		pre, err := mgr.Create("supplier", []string{"s_acctbal"})
		if err != nil {
			t.Fatal(err)
		}
		mgr.AddToDropList(pre.ID)

		cfg := DefaultConfig()
		cfg.Drop = true
		wr, err := RunMNSAWorkloadParallel(sess, tuningWorkload(t, db), cfg, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range wr.DropListed {
			if id == pre.ID {
				t.Errorf("p=%d: pre-existing drop-list entry %s reported as new", parallelism, id)
			}
		}
	}
}

// TestAgingSkipAvoidsWastedReoptimize: when aging suppresses every candidate,
// MNSA must terminate after the initial plan and one extremes test (3 calls)
// instead of burning a re-optimization per suppressed unit.
func TestAgingSkipAvoidsWastedReoptimize(t *testing.T) {
	db := testDB(t, 2)
	sess := newSession(t, db)
	mgr := sess.Manager()
	mgr.AgingWindow = 1000

	q := mustParse(t, db, "SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45")
	cfg := DefaultConfig()
	res, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Created {
		mgr.Drop(id)
	}

	cfg.UseAging = true
	cfg.AgingCostThreshold = 1e18
	res2, err := RunMNSA(sess, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Created) != 0 || len(res2.AgeSkipped) == 0 {
		t.Fatalf("setup: aging should suppress all creation: %+v", res2)
	}
	if res2.TerminatedBy != TermNoCandidates {
		t.Errorf("terminated by %s, want %s", res2.TerminatedBy, TermNoCandidates)
	}
	// 1 initial optimization + 2 extreme plans; no re-optimizations for
	// units that built nothing.
	if res2.OptimizerCalls != 3 {
		t.Errorf("OptimizerCalls = %d, want 3 (no wasted re-optimizations)", res2.OptimizerCalls)
	}
	if res2.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1 (extremes tested once)", res2.Iterations)
	}
}
