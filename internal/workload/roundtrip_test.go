package workload

import (
	"testing"

	"autostats/internal/datagen"
	"autostats/internal/sqlparser"
)

// TestRoundTripTPCDOrig: every TPCD-ORIG query re-renders and re-parses to
// identical SQL (fixed point after one round).
func TestRoundTripTPCDOrig(t *testing.T) {
	s := datagen.Schema()
	w, err := TPCDOrig(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Statements) != 17 {
		t.Fatalf("TPCD-ORIG has %d statements", len(w.Statements))
	}
	for i, stmt := range w.Statements {
		once := stmt.SQL()
		re, err := sqlparser.Parse(s, once)
		if err != nil {
			t.Fatalf("Q%d re-parse: %v", i+1, err)
		}
		if re.SQL() != once {
			t.Errorf("Q%d round trip:\n%s\n%s", i+1, once, re.SQL())
		}
	}
}

// TestRoundTripGeneratedWorkload: generated workloads (including DML)
// survive the print→parse→print round trip.
func TestRoundTripGeneratedWorkload(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.2, Z: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(db, Config{Count: 120, UpdatePct: 30, Complexity: Complex, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range w.Statements {
		once := stmt.SQL()
		re, err := sqlparser.Parse(db.Schema, once)
		if err != nil {
			t.Fatalf("stmt %d (%q) re-parse: %v", i, once, err)
		}
		if re.SQL() != once {
			t.Errorf("stmt %d round trip:\n%s\n%s", i, once, re.SQL())
		}
	}
}
