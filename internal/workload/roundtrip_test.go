package workload

import (
	"bytes"
	"testing"

	"autostats/internal/datagen"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
)

// TestRoundTripTPCDOrig: every TPCD-ORIG query re-renders and re-parses to
// identical SQL (fixed point after one round).
func TestRoundTripTPCDOrig(t *testing.T) {
	s := datagen.Schema()
	w, err := TPCDOrig(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Statements) != 17 {
		t.Fatalf("TPCD-ORIG has %d statements", len(w.Statements))
	}
	for i, stmt := range w.Statements {
		once := stmt.SQL()
		re, err := sqlparser.Parse(s, once)
		if err != nil {
			t.Fatalf("Q%d re-parse: %v", i+1, err)
		}
		if re.SQL() != once {
			t.Errorf("Q%d round trip:\n%s\n%s", i+1, once, re.SQL())
		}
	}
}

// TestRoundTripGeneratedWorkload: generated workloads (including DML)
// survive the print→parse→print round trip.
func TestRoundTripGeneratedWorkload(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.2, Z: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(db, Config{Count: 120, UpdatePct: 30, Complexity: Complex, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, stmt := range w.Statements {
		once := stmt.SQL()
		re, err := sqlparser.Parse(db.Schema, once)
		if err != nil {
			t.Fatalf("stmt %d (%q) re-parse: %v", i, once, err)
		}
		if re.SQL() != once {
			t.Errorf("stmt %d round trip:\n%s\n%s", i, once, re.SQL())
		}
	}
}

// TestRoundTripHarnessWorkloads is the property the differential oracle
// depends on, over the full adversarial grammar the harness enables: with
// <> predicates, out-of-range constants, GROUP BY, HAVING and ORDER BY all
// switched on, every generated statement must survive print→parse→print
// to a fixed point, across several seeds.
func TestRoundTripHarnessWorkloads(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.1, Z: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		w, err := Generate(db, Config{
			Count:         150,
			UpdatePct:     15,
			Complexity:    Complex,
			GroupByPct:    40,
			OrderByPct:    25,
			NePct:         25,
			OutOfRangePct: 25,
			HavingPct:     50,
			Seed:          seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sawNe, sawHaving := false, false
		for i, stmt := range w.Statements {
			once := stmt.SQL()
			re, err := sqlparser.Parse(db.Schema, once)
			if err != nil {
				t.Fatalf("seed %d stmt %d (%q) re-parse: %v", seed, i, once, err)
			}
			if got := re.SQL(); got != once {
				t.Errorf("seed %d stmt %d round trip:\n%s\n%s", seed, i, once, got)
			}
			if q, ok := stmt.(*query.Select); ok {
				for _, f := range q.Filters {
					if f.Op == query.Ne {
						sawNe = true
					}
				}
				if len(q.Having) > 0 {
					sawHaving = true
				}
			}
		}
		// The knobs must actually fire, or this test is vacuous.
		if !sawNe || !sawHaving {
			t.Errorf("seed %d: adversarial grammar not exercised (ne=%v having=%v)", seed, sawNe, sawHaving)
		}
	}
}

// TestSaveLoadHarnessWorkload: serializing a harness workload to its file format
// and loading it back must preserve every statement exactly, and a second
// save must be byte-identical (satisfying the serialize→parse property at
// the file level, not just per statement).
func TestSaveLoadHarnessWorkload(t *testing.T) {
	db, err := datagen.Generate(datagen.Config{Scale: 0.1, Z: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(db, Config{
		Count: 200, UpdatePct: 20, Complexity: Complex,
		GroupByPct: 40, OrderByPct: 25, NePct: 20, OutOfRangePct: 20, HavingPct: 40,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Name = "harness-roundtrip"

	var first bytes.Buffer
	if err := w.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(db.Schema, bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("load of saved workload: %v", err)
	}
	if loaded.Name != w.Name {
		t.Errorf("name %q -> %q", w.Name, loaded.Name)
	}
	if len(loaded.Statements) != len(w.Statements) {
		t.Fatalf("statement count %d -> %d", len(w.Statements), len(loaded.Statements))
	}
	for i := range w.Statements {
		if got, want := loaded.Statements[i].SQL(), w.Statements[i].SQL(); got != want {
			t.Errorf("statement %d changed across save/load:\n  saved:  %s\n  loaded: %s", i, want, got)
		}
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("save → load → save is not byte-identical")
	}
}
