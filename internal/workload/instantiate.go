package workload

import (
	"math/rand"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// Instantiator stamps out fresh parameter instances of template queries: the
// statement shape (tables, joins, grouping, ordering) is kept and every
// filter constant is re-sampled from the live data, exactly like the
// generator samples its original constants. Repeated-template benchmarks and
// the plan-cache regression suite use it to model the prepared-statement
// workloads the paper's tuning loop observes — same SQL text modulo
// constants, over and over.
type Instantiator struct {
	rng       *rand.Rand
	db        *storage.Database
	colValues map[string][]catalog.Datum
}

// NewInstantiator samples from db's current contents; the seed makes every
// instance stream deterministic.
func NewInstantiator(db *storage.Database, seed int64) *Instantiator {
	return &Instantiator{
		rng:       rand.New(rand.NewSource(seed)),
		db:        db,
		colValues: make(map[string][]catalog.Datum),
	}
}

// sample mirrors generator.sample: a random live value of table.column, with
// the column-value slice cached per column.
func (in *Instantiator) sample(table, column string) (catalog.Datum, bool) {
	key := strings.ToLower(table) + "." + strings.ToLower(column)
	vals, ok := in.colValues[key]
	if !ok {
		if td, err := in.db.Table(table); err == nil {
			if vs, err := td.ColumnValues(column); err == nil {
				vals = vs
			}
		}
		in.colValues[key] = vals
	}
	if len(vals) == 0 {
		return catalog.Datum{}, false
	}
	return vals[in.rng.Intn(len(vals))], true
}

// Instantiate clones the template with every filter constant re-sampled from
// the filtered column's live values (a constant whose column has no live
// values is kept). The clone shares the template's immutable clause slices;
// only Filters is fresh. Selectivity-variable IDs carry over unchanged — the
// clone has the same shape, so Normalize would assign identical IDs.
func (in *Instantiator) Instantiate(tmpl *query.Select) *query.Select {
	q := *tmpl
	q.Filters = make([]query.Filter, len(tmpl.Filters))
	copy(q.Filters, tmpl.Filters)
	for i := range q.Filters {
		f := &q.Filters[i]
		if v, ok := in.sample(f.Col.Table, f.Col.Column); ok {
			f.Val = v
		}
	}
	return &q
}
