package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/storage"
)

// Complexity bounds the number of tables per generated query, matching the
// paper's §8.1 workload grid: Simple is at most 2 tables, Complex at most 8.
type Complexity int

const (
	// Simple queries touch at most 2 tables.
	Simple Complexity = iota
	// Complex queries touch up to 8 tables.
	Complex
)

// MaxTables returns the table cap for the complexity level.
func (c Complexity) MaxTables() int {
	if c == Complex {
		return 8
	}
	return 2
}

// Letter returns the workload-name letter (S or C).
func (c Complexity) Letter() string {
	if c == Complex {
		return "C"
	}
	return "S"
}

// Config parameterizes the Rags-like generator.
type Config struct {
	// Count is the total number of statements.
	Count int
	// UpdatePct is the percentage of insert/delete/update statements
	// (0, 25 or 50 in the paper's grid; any 0-100 value works).
	UpdatePct int
	// Complexity bounds tables per query.
	Complexity Complexity
	// GroupByPct is the chance (0-100) that a query gets a GROUP BY clause.
	GroupByPct int
	// OrderByPct is the chance (0-100) that a query gets an ORDER BY clause.
	OrderByPct int
	// Seed makes generation deterministic.
	Seed int64

	// The adversarial knobs below exist for the correctness harness
	// (internal/oracle) and default to off. They are gated so that a zero
	// value consumes no randomness: existing seeds keep producing exactly
	// the same workloads.

	// NePct is the chance (0-100) that a numeric filter uses <> instead of
	// the standard operator mix. The paper's magic number for <> is 0.90,
	// the opposite end of the selectivity range from equality's 0.10.
	NePct int
	// OutOfRangePct is the chance (0-100) that a numeric filter constant is
	// pushed far outside the column's live domain, exercising the
	// histograms' and executor's empty-range paths.
	OutOfRangePct int
	// HavingPct is the chance (0-100) that a grouped query gets a
	// HAVING COUNT(*) predicate.
	HavingPct int
}

// Name renders the paper's workload naming scheme, e.g. "U25-S-1000".
func (c Config) Name() string {
	return fmt.Sprintf("U%d-%s-%d", c.UpdatePct, c.Complexity.Letter(), c.Count)
}

// ConfigByName parses names like "U25-S-1000" back into a Config.
func ConfigByName(name string, seed int64) (Config, error) {
	parts := strings.Split(name, "-")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "U") {
		return Config{}, fmt.Errorf("workload: bad workload name %q (want e.g. U25-S-1000)", name)
	}
	var cfg Config
	pct, err := strconv.Atoi(parts[0][1:])
	if err != nil || pct < 0 || pct > 100 {
		return Config{}, fmt.Errorf("workload: bad update pct in %q", name)
	}
	cfg.UpdatePct = pct
	switch parts[1] {
	case "S":
		cfg.Complexity = Simple
	case "C":
		cfg.Complexity = Complex
	default:
		return Config{}, fmt.Errorf("workload: bad complexity %q in %q", parts[1], name)
	}
	count, err := strconv.Atoi(parts[2])
	if err != nil || count <= 0 {
		return Config{}, fmt.Errorf("workload: bad count in %q", name)
	}
	cfg.Count = count
	cfg.GroupByPct = 30
	cfg.OrderByPct = 20
	cfg.Seed = seed
	return cfg, nil
}

// generator holds sampling state for one generation run.
type generator struct {
	rng    *rand.Rand
	schema *catalog.Schema
	db     *storage.Database
	cfg    Config

	tableNames []string
	// colValues caches live column values per "table.column" for sampling
	// predicate constants from the actual data distribution.
	colValues map[string][]catalog.Datum
	// adjacency lists FK edges per table.
	adj map[string][]catalog.ForeignKey
}

// Generate produces a workload over the database using the paper's knobs.
// Predicate constants are sampled from the live data so generated predicates
// span the full selectivity range under any skew.
func Generate(db *storage.Database, cfg Config) (*Workload, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: Count must be positive")
	}
	if cfg.GroupByPct == 0 {
		cfg.GroupByPct = 30
	}
	if cfg.OrderByPct == 0 {
		cfg.OrderByPct = 20
	}
	g := &generator{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		schema:    db.Schema,
		db:        db,
		cfg:       cfg,
		colValues: make(map[string][]catalog.Datum),
		adj:       make(map[string][]catalog.ForeignKey),
	}
	g.tableNames = db.Schema.TableNames()
	for _, fk := range db.Schema.ForeignKeys {
		g.adj[strings.ToLower(fk.Table)] = append(g.adj[strings.ToLower(fk.Table)], fk)
		g.adj[strings.ToLower(fk.RefTable)] = append(g.adj[strings.ToLower(fk.RefTable)], fk)
	}

	w := &Workload{Name: cfg.Name()}
	for i := 0; i < cfg.Count; i++ {
		var stmt query.Statement
		var err error
		if g.rng.Intn(100) < cfg.UpdatePct {
			stmt, err = g.genDML()
		} else {
			stmt, err = g.genQuery()
		}
		if err != nil {
			return nil, err
		}
		w.Statements = append(w.Statements, stmt)
	}
	return w, nil
}

// sample returns a random live value of table.column, or a NULL datum when
// the table is empty.
func (g *generator) sample(table, column string) catalog.Datum {
	key := strings.ToLower(table) + "." + strings.ToLower(column)
	vals, ok := g.colValues[key]
	if !ok {
		var vs []catalog.Datum
		if td, err := g.db.Table(table); err == nil {
			vs, err = td.ColumnValues(column)
			if err != nil {
				vs = nil
			}
		}
		g.colValues[key] = vs
		vals = vs
	}
	if len(vals) == 0 {
		t, _ := g.schema.Table(table)
		col, _ := t.Column(column)
		return catalog.NewNull(col.Type)
	}
	return vals[g.rng.Intn(len(vals))]
}

// pickTables grows a connected subgraph of the FK graph starting from a
// random table, up to n tables. To keep generated queries in the
// decision-support snowflake shape (and their results bounded by the
// largest fact table), at most ONE expansion in the one-to-many direction
// is allowed per query: adding a second referencing ("fact") branch —
// whether under the same parent or reachable through another dimension —
// cross-products the branches per shared key, which explodes under skew.
// Many-to-one (dimension) expansions are unrestricted; together with the
// single downward step they generate the classic TPC-D chain-of-facts plus
// dimensions query shapes.
func (g *generator) pickTables(n int) []string {
	start := g.tableNames[g.rng.Intn(len(g.tableNames))]
	chosen := map[string]bool{strings.ToLower(start): true}
	order := []string{strings.ToLower(start)}
	downUsed := false
	for len(order) < n {
		// Frontier: FK edges with exactly one endpoint inside, excluding
		// blocked one-to-many expansions.
		var frontier []catalog.ForeignKey
		for t := range chosen {
			for _, fk := range g.adj[t] {
				a, b := strings.ToLower(fk.Table), strings.ToLower(fk.RefTable)
				if chosen[a] == chosen[b] {
					continue
				}
				if chosen[b] && downUsed {
					// b is the chosen parent; adding the referencing table
					// a would open a second fact branch.
					continue
				}
				frontier = append(frontier, fk)
			}
		}
		if len(frontier) == 0 {
			break
		}
		sort.Slice(frontier, func(i, j int) bool {
			return fkKey(frontier[i]) < fkKey(frontier[j])
		})
		fk := frontier[g.rng.Intn(len(frontier))]
		a, b := strings.ToLower(fk.Table), strings.ToLower(fk.RefTable)
		if chosen[b] && !chosen[a] {
			downUsed = true
		}
		for _, t := range []string{a, b} {
			if !chosen[t] {
				chosen[t] = true
				order = append(order, t)
			}
		}
	}
	return order
}

func fkKey(fk catalog.ForeignKey) string {
	return fk.Table + "." + fk.Column + "=" + fk.RefTable + "." + fk.RefColumn
}

// joinPredsFor emits one equi-join predicate per FK edge internal to the
// chosen tables, keeping the query graph connected.
func (g *generator) joinPredsFor(tables []string) []query.JoinPred {
	chosen := make(map[string]bool, len(tables))
	for _, t := range tables {
		chosen[t] = true
	}
	var preds []query.JoinPred
	for _, fk := range g.schema.ForeignKeys {
		a, b := strings.ToLower(fk.Table), strings.ToLower(fk.RefTable)
		if chosen[a] && chosen[b] {
			preds = append(preds, query.JoinPred{
				Left:  query.ColumnRef{Table: a, Column: strings.ToLower(fk.Column)},
				Right: query.ColumnRef{Table: b, Column: strings.ToLower(fk.RefColumn)},
			})
		}
	}
	return preds
}

// filterableColumns lists the columns of a table suitable for predicates:
// everything except the wide comment/name/address text columns (mirroring
// Rags' use of comparable columns).
func (g *generator) filterableColumns(table string) []catalog.Column {
	t, err := g.schema.Table(table)
	if err != nil {
		return nil
	}
	var out []catalog.Column
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if strings.Contains(lc, "comment") || strings.Contains(lc, "address") || strings.Contains(lc, "name") && c.Type == catalog.String && !strings.Contains(lc, "mktsegment") {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (g *generator) genFilter(table string) (query.Filter, bool) {
	cols := g.filterableColumns(table)
	if len(cols) == 0 {
		return query.Filter{}, false
	}
	col := cols[g.rng.Intn(len(cols))]
	val := g.sample(table, col.Name)
	if val.Null {
		return query.Filter{}, false
	}
	var op query.CmpOp
	if col.Type == catalog.String {
		op = query.Eq
	} else {
		switch g.rng.Intn(5) {
		case 0:
			op = query.Eq
		case 1:
			op = query.Lt
		case 2:
			op = query.Le
		case 3:
			op = query.Gt
		default:
			op = query.Ge
		}
		if g.cfg.NePct > 0 && g.rng.Intn(100) < g.cfg.NePct {
			op = query.Ne
		}
		if g.cfg.OutOfRangePct > 0 && g.rng.Intn(100) < g.cfg.OutOfRangePct {
			val = pushOutOfRange(g.rng, val)
		}
	}
	return query.Filter{
		Col: query.ColumnRef{Table: table, Column: strings.ToLower(col.Name)},
		Op:  op,
		Val: val,
	}, true
}

func (g *generator) genQuery() (query.Statement, error) {
	max := g.cfg.Complexity.MaxTables()
	n := 1 + g.rng.Intn(max)
	tables := g.pickTables(n)
	q := &query.Select{Tables: tables, GroupVarID: -1}
	q.Joins = g.joinPredsFor(tables)

	nFilters := 1 + g.rng.Intn(3)
	for i := 0; i < nFilters; i++ {
		t := tables[g.rng.Intn(len(tables))]
		if f, ok := g.genFilter(t); ok {
			q.Filters = append(q.Filters, f)
		}
	}
	if g.rng.Intn(100) < g.cfg.GroupByPct {
		t := tables[g.rng.Intn(len(tables))]
		if cols := g.filterableColumns(t); len(cols) > 0 {
			c := cols[g.rng.Intn(len(cols))]
			q.GroupBy = append(q.GroupBy, query.ColumnRef{Table: t, Column: strings.ToLower(c.Name)})
			if g.rng.Intn(100) < 30 {
				c2 := cols[g.rng.Intn(len(cols))]
				if !strings.EqualFold(c2.Name, c.Name) {
					q.GroupBy = append(q.GroupBy, query.ColumnRef{Table: t, Column: strings.ToLower(c2.Name)})
				}
			}
			// Grouped queries project their group columns and aggregate,
			// like real decision-support SQL.
			q.Projection = append([]query.ColumnRef(nil), q.GroupBy...)
			q.Aggregates = append(q.Aggregates, query.Aggregate{Func: query.CountStar})
			if num := g.numericColumn(t); num != "" && g.rng.Intn(100) < 60 {
				fns := []query.AggFunc{query.Sum, query.Avg, query.Min, query.Max}
				q.Aggregates = append(q.Aggregates, query.Aggregate{
					Func: fns[g.rng.Intn(len(fns))],
					Col:  query.ColumnRef{Table: t, Column: num},
				})
			}
			if g.cfg.HavingPct > 0 && g.rng.Intn(100) < g.cfg.HavingPct {
				ops := []query.CmpOp{query.Gt, query.Ge, query.Le}
				q.Having = append(q.Having, query.HavingPred{
					Agg: query.Aggregate{Func: query.CountStar},
					Op:  ops[g.rng.Intn(len(ops))],
					Val: catalog.NewInt(int64(1 + g.rng.Intn(3))),
				})
			}
		}
	}
	if len(q.GroupBy) == 0 && g.rng.Intn(100) < g.cfg.OrderByPct {
		t := tables[g.rng.Intn(len(tables))]
		if cols := g.filterableColumns(t); len(cols) > 0 {
			c := cols[g.rng.Intn(len(cols))]
			q.OrderBy = append(q.OrderBy, query.ColumnRef{Table: t, Column: strings.ToLower(c.Name)})
		}
	}
	q.Normalize()
	return q, nil
}

// numericColumn picks a random numeric (Int/Float) filterable column of the
// table, or "" if none.
func (g *generator) numericColumn(table string) string {
	var nums []string
	for _, c := range g.filterableColumns(table) {
		if c.Type == catalog.Int || c.Type == catalog.Float {
			nums = append(nums, strings.ToLower(c.Name))
		}
	}
	if len(nums) == 0 {
		return ""
	}
	return nums[g.rng.Intn(len(nums))]
}

func (g *generator) genDML() (query.Statement, error) {
	table := g.tableNames[g.rng.Intn(len(g.tableNames))]
	t, err := g.schema.Table(table)
	if err != nil {
		return nil, err
	}
	switch g.rng.Intn(3) {
	case 0: // INSERT: every column sampled from the live distribution.
		vals := make([]catalog.Datum, len(t.Columns))
		for i, c := range t.Columns {
			vals[i] = g.sample(table, c.Name)
			if vals[i].Null {
				vals[i] = zeroDatum(c.Type)
			}
		}
		return &query.Insert{Table: strings.ToLower(t.Name), Values: vals}, nil
	case 1: // DELETE with an equality predicate.
		d := &query.Delete{Table: strings.ToLower(t.Name)}
		if f, ok := g.genFilter(strings.ToLower(t.Name)); ok {
			f.Op = query.Eq
			d.Filters = []query.Filter{f}
		} else {
			// No usable filter column: delete nothing rather than everything.
			d.Filters = []query.Filter{{
				Col: query.ColumnRef{Table: strings.ToLower(t.Name), Column: strings.ToLower(t.Columns[0].Name)},
				Op:  query.Lt,
				Val: zeroDatum(t.Columns[0].Type),
			}}
		}
		return d, nil
	default: // UPDATE a non-key column.
		u := &query.Update{Table: strings.ToLower(t.Name)}
		cols := g.filterableColumns(strings.ToLower(t.Name))
		if len(cols) == 0 {
			cols = t.Columns
		}
		c := cols[g.rng.Intn(len(cols))]
		u.SetCol = strings.ToLower(c.Name)
		u.SetVal = g.sample(table, c.Name)
		if u.SetVal.Null {
			u.SetVal = zeroDatum(c.Type)
		}
		if f, ok := g.genFilter(strings.ToLower(t.Name)); ok {
			u.Filters = []query.Filter{f}
		}
		return u, nil
	}
}

// pushOutOfRange moves a sampled numeric constant far outside any live
// column domain (TPC-D values stay well under 10^9), in a random direction.
// Non-numeric datums are returned unchanged.
func pushOutOfRange(rng *rand.Rand, val catalog.Datum) catalog.Datum {
	sign := int64(1)
	if rng.Intn(2) == 0 {
		sign = -1
	}
	switch val.T {
	case catalog.Int:
		return catalog.NewInt(val.I + sign*(1<<40))
	case catalog.Float:
		return catalog.NewFloat(val.F + float64(sign)*1e12)
	case catalog.Date:
		return catalog.NewDate(val.I + sign*(1<<40))
	default:
		return val
	}
}

func zeroDatum(t catalog.Type) catalog.Datum {
	switch t {
	case catalog.Float:
		return catalog.NewFloat(0)
	case catalog.String:
		return catalog.NewString("")
	case catalog.Date:
		return catalog.NewDate(0)
	default:
		return catalog.NewInt(0)
	}
}
