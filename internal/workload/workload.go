// Package workload models SQL workloads: the Rags-like stochastic generator
// the paper uses for its §8 experiments ([15], with the paper's knobs:
// update percentage, query complexity, statement count), the TPCD-ORIG
// 17-query workload, and (de)serialization so workloads can be saved and
// replayed by the CLI tools.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"autostats/internal/catalog"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
)

// Workload is an ordered list of statements.
type Workload struct {
	Name       string
	Statements []query.Statement
}

// Queries returns only the SELECT statements, in order.
func (w *Workload) Queries() []*query.Select {
	var out []*query.Select
	for _, s := range w.Statements {
		if q, ok := s.(*query.Select); ok {
			out = append(out, q)
		}
	}
	return out
}

// UpdateStatements returns only the DML statements, in order.
func (w *Workload) UpdateStatements() []query.Statement {
	var out []query.Statement
	for _, s := range w.Statements {
		if !s.IsQuery() {
			out = append(out, s)
		}
	}
	return out
}

// Save writes the workload as one SQL statement per line, with a header
// comment carrying the name.
func (w *Workload) Save(out io.Writer) error {
	bw := bufio.NewWriter(out)
	if w.Name != "" {
		if _, err := fmt.Fprintf(bw, "-- workload: %s\n", w.Name); err != nil {
			return err
		}
	}
	for _, s := range w.Statements {
		if _, err := fmt.Fprintln(bw, s.SQL()+";"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses a workload saved by Save (or hand-written SQL, one statement
// per line; lines starting with "--" are comments).
func Load(schema *catalog.Schema, in io.Reader) (*Workload, error) {
	w := &Workload{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "--") {
			if rest, ok := strings.CutPrefix(line, "-- workload:"); ok {
				w.Name = strings.TrimSpace(rest)
			}
			continue
		}
		stmt, err := sqlparser.Parse(schema, strings.TrimSuffix(line, ";"))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		w.Statements = append(w.Statements, stmt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return w, nil
}
