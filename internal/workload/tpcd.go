package workload

import (
	"fmt"

	"autostats/internal/catalog"
	"autostats/internal/sqlparser"
)

// tpcdOrigSQL holds the 17-query TPCD-ORIG workload (§8.1). The queries are
// the TPC-D benchmark queries Q1–Q17 restated in the system's normalized
// SPJ + GROUP BY subset: multi-block constructs (correlated subqueries,
// HAVING, arithmetic in projections) are flattened to the statistics-relevant
// core — the joins, selections and groupings whose selectivities drive plan
// choice. Dates are day numbers; the generated domain spans DATE 8035
// (1992-01-01) to DATE 10590 (1998-12-31).
var tpcdOrigSQL = []string{
	// Q1 pricing summary report
	"SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice), AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= DATE 10500 GROUP BY l_returnflag, l_linestatus",
	// Q2 minimum cost supplier
	"SELECT * FROM part, partsupp, supplier, nation, region WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE' AND p_size = 15",
	// Q3 shipping priority
	"SELECT l_orderkey FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND c_mktsegment = 'BUILDING' AND o_orderdate < DATE 8840 AND l_shipdate > DATE 8840 GROUP BY l_orderkey",
	// Q4 order priority checking
	"SELECT o_orderpriority, COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND o_orderdate >= DATE 8400 AND o_orderdate < DATE 8490 AND l_receiptdate > DATE 8490 GROUP BY o_orderpriority",
	// Q5 local supplier volume
	"SELECT n_name, SUM(l_extendedprice) FROM customer, orders, lineitem, supplier, nation, region WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey AND c_nationkey = n_nationkey AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'ASIA' AND o_orderdate >= DATE 8401 AND o_orderdate < DATE 8766 GROUP BY n_name",
	// Q6 forecasting revenue change
	"SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem WHERE l_shipdate >= DATE 8401 AND l_shipdate < DATE 8766 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
	// Q7 volume shipping
	"SELECT n_name, SUM(l_extendedprice) FROM supplier, lineitem, orders, customer, nation WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey AND s_nationkey = n_nationkey AND l_shipdate BETWEEN DATE 9132 AND DATE 9862 GROUP BY n_name",
	// Q8 national market share
	"SELECT o_orderdate FROM part, supplier, lineitem, orders, customer, nation, region WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey AND o_custkey = c_custkey AND c_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'AMERICA' AND o_orderdate BETWEEN DATE 9132 AND DATE 9862 AND p_type = 'ECONOMY ANODIZED STEEL' GROUP BY o_orderdate",
	// Q9 product type profit measure
	"SELECT n_name, SUM(ps_supplycost) FROM part, supplier, lineitem, partsupp, orders, nation WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey AND p_size > 40 GROUP BY n_name",
	// Q10 returned item reporting
	"SELECT c_custkey, SUM(l_extendedprice) FROM customer, orders, lineitem, nation WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND c_nationkey = n_nationkey AND o_orderdate >= DATE 8675 AND o_orderdate < DATE 8766 AND l_returnflag = 'R' GROUP BY c_custkey",
	// Q11 important stock identification
	"SELECT ps_partkey, SUM(ps_supplycost) FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY' GROUP BY ps_partkey",
	// Q12 shipping modes and order priority
	"SELECT l_shipmode, COUNT(*) FROM orders, lineitem WHERE o_orderkey = l_orderkey AND l_shipmode = 'MAIL' AND l_receiptdate >= DATE 8401 AND l_receiptdate < DATE 8766 GROUP BY l_shipmode",
	// Q13 customer order priority distribution
	"SELECT o_orderpriority, COUNT(*) FROM customer, orders WHERE c_custkey = o_custkey AND o_totalprice > 300000 GROUP BY o_orderpriority",
	// Q14 promotion effect
	"SELECT SUM(l_extendedprice) FROM lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= DATE 9001 AND l_shipdate < DATE 9032",
	// Q15 top supplier
	"SELECT s_suppkey, SUM(l_extendedprice) FROM supplier, lineitem WHERE s_suppkey = l_suppkey AND l_shipdate >= DATE 9001 AND l_shipdate < DATE 9093 GROUP BY s_suppkey",
	// Q16 parts/supplier relationship
	"SELECT p_brand, p_type, COUNT(*) FROM partsupp, part WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' AND p_size > 20 GROUP BY p_brand, p_type",
	// Q17 small-quantity-order revenue
	"SELECT AVG(l_extendedprice) FROM lineitem, part WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX' AND l_quantity < 5",
}

// TPCDOrig returns the 17-query TPCD-ORIG workload parsed against the
// schema.
func TPCDOrig(schema *catalog.Schema) (*Workload, error) {
	w := &Workload{Name: "TPCD-ORIG"}
	for i, sql := range tpcdOrigSQL {
		stmt, err := sqlparser.Parse(schema, sql)
		if err != nil {
			return nil, fmt.Errorf("workload: TPCD-ORIG Q%d: %w", i+1, err)
		}
		w.Statements = append(w.Statements, stmt)
	}
	return w, nil
}
