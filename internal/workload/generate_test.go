package workload

import (
	"bytes"
	"strings"
	"testing"

	"autostats/internal/datagen"
	"autostats/internal/query"
	"autostats/internal/storage"
)

func genDB(t testing.TB) *storage.Database {
	t.Helper()
	db, err := datagen.Generate(datagen.Config{Scale: 0.25, Z: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestConfigNameRoundTrip(t *testing.T) {
	for _, cfg := range []Config{
		{Count: 1000, UpdatePct: 25, Complexity: Simple},
		{Count: 100, UpdatePct: 0, Complexity: Complex},
		{Count: 500, UpdatePct: 50, Complexity: Complex},
	} {
		name := cfg.Name()
		back, err := ConfigByName(name, 7)
		if err != nil {
			t.Fatalf("ConfigByName(%q): %v", name, err)
		}
		if back.Count != cfg.Count || back.UpdatePct != cfg.UpdatePct || back.Complexity != cfg.Complexity {
			t.Errorf("%q round-tripped to %+v", name, back)
		}
	}
	if (Config{Count: 1000, UpdatePct: 25, Complexity: Simple}).Name() != "U25-S-1000" {
		t.Error("paper naming scheme broken")
	}
	for _, bad := range []string{"", "X25-S-100", "U25-Q-100", "U25-S", "U2x-S-100"} {
		if _, err := ConfigByName(bad, 1); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	db := genDB(t)
	cfg := Config{Count: 50, UpdatePct: 25, Complexity: Complex, Seed: 11}
	w1, err := Generate(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	db2 := genDB(t)
	w2, err := Generate(db2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Statements) != len(w2.Statements) {
		t.Fatal("lengths differ")
	}
	for i := range w1.Statements {
		if w1.Statements[i].SQL() != w2.Statements[i].SQL() {
			t.Fatalf("statement %d differs:\n%s\n%s", i, w1.Statements[i].SQL(), w2.Statements[i].SQL())
		}
	}
}

func TestUpdatePctRespected(t *testing.T) {
	db := genDB(t)
	for _, pct := range []int{0, 25, 50} {
		w, err := Generate(db, Config{Count: 400, UpdatePct: pct, Complexity: Simple, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		dml := len(w.UpdateStatements())
		got := float64(dml) / 4.0 // percent of 400
		if got < float64(pct)-8 || got > float64(pct)+8 {
			t.Errorf("UpdatePct=%d produced %.0f%% DML", pct, got)
		}
		if len(w.Queries())+dml != 400 {
			t.Error("queries + DML != total")
		}
	}
}

func TestComplexityBoundsTables(t *testing.T) {
	db := genDB(t)
	for _, c := range []Complexity{Simple, Complex} {
		w, err := Generate(db, Config{Count: 200, Complexity: c, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		maxSeen := 0
		for _, q := range w.Queries() {
			if len(q.Tables) > maxSeen {
				maxSeen = len(q.Tables)
			}
		}
		if maxSeen > c.MaxTables() {
			t.Errorf("%s workload used %d tables (cap %d)", c.Letter(), maxSeen, c.MaxTables())
		}
	}
}

// TestQueriesAreConnected: every multi-table query must have join predicates
// linking all its tables (no accidental cartesian products).
func TestQueriesAreConnected(t *testing.T) {
	db := genDB(t)
	w, err := Generate(db, Config{Count: 300, Complexity: Complex, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range w.Queries() {
		if len(q.Tables) < 2 {
			continue
		}
		parent := map[string]string{}
		var find func(string) string
		find = func(x string) string {
			if parent[x] == "" || parent[x] == x {
				return x
			}
			r := find(parent[x])
			parent[x] = r
			return r
		}
		for _, tb := range q.Tables {
			parent[tb] = tb
		}
		for _, j := range q.Joins {
			a, b := find(strings.ToLower(j.Left.Table)), find(strings.ToLower(j.Right.Table))
			if a != b {
				parent[a] = b
			}
		}
		root := find(q.Tables[0])
		for _, tb := range q.Tables[1:] {
			if find(tb) != root {
				t.Errorf("Q%d is disconnected: %s", i, q.SQL())
				break
			}
		}
	}
}

// TestSnowflakeShape: at most one one-to-many expansion — verified by
// checking that no two tables in a query are both "children" joined only
// upward... we verify the generator's own invariant indirectly by bounding
// estimated blow-up: every query's join predicates must include, for every
// pair of fact tables present, a direct connection (partsupp & lineitem
// always carry their composite predicates when both appear).
func TestCompositeJoinEmitted(t *testing.T) {
	db := genDB(t)
	w, err := Generate(db, Config{Count: 300, Complexity: Complex, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range w.Queries() {
		hasLI, hasPS := false, false
		for _, tb := range q.Tables {
			hasLI = hasLI || tb == "lineitem"
			hasPS = hasPS || tb == "partsupp"
		}
		if !hasLI || !hasPS {
			continue
		}
		found = true
		part, supp := false, false
		for _, j := range q.Joins {
			s := j.String()
			if strings.Contains(s, "l_partkey = partsupp.ps_partkey") || strings.Contains(s, "ps_partkey = lineitem.l_partkey") {
				part = true
			}
			if strings.Contains(s, "l_suppkey = partsupp.ps_suppkey") || strings.Contains(s, "ps_suppkey = lineitem.l_suppkey") {
				supp = true
			}
		}
		if !part || !supp {
			t.Errorf("lineitem+partsupp query missing composite join: %s", q.SQL())
		}
	}
	if !found {
		t.Skip("no lineitem+partsupp query generated with this seed")
	}
}

func TestPredicateConstantsComeFromData(t *testing.T) {
	db := genDB(t)
	w, err := Generate(db, Config{Count: 200, Complexity: Simple, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, q := range w.Queries() {
		for _, f := range q.Filters {
			if f.Op != query.Eq {
				continue
			}
			vals, err := mustTable(t, db, f.Col.Table).ColumnValues(f.Col.Column)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, v := range vals {
				if v.Equal(f.Val) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("equality constant %s not present in %s.%s", f.Val, f.Col.Table, f.Col.Column)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no equality predicates generated")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := genDB(t)
	w, err := Generate(db, Config{Count: 80, UpdatePct: 30, Complexity: Complex, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(db.Schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != w.Name {
		t.Errorf("name %q != %q", back.Name, w.Name)
	}
	if len(back.Statements) != len(w.Statements) {
		t.Fatalf("statement count %d != %d", len(back.Statements), len(w.Statements))
	}
	for i := range w.Statements {
		if back.Statements[i].SQL() != w.Statements[i].SQL() {
			t.Errorf("statement %d: %q != %q", i, back.Statements[i].SQL(), w.Statements[i].SQL())
		}
	}
}

func TestLoadRejectsBadSQL(t *testing.T) {
	db := genDB(t)
	if _, err := Load(db.Schema, strings.NewReader("SELECT * FROM nowhere;\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestGenerateValidatesCount(t *testing.T) {
	db := genDB(t)
	if _, err := Generate(db, Config{Count: 0}); err == nil {
		t.Error("expected error for zero count")
	}
}
