package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// BuildArm is one parallelism setting of the partition-parallel statistics
// build benchmark. Every partition build and every merge is timed
// individually, so the arm reports two walls:
//
//   - Wall: the sum of all phases — the measured wall on a single core.
//   - CriticalPathWall: per build, the SLOWEST partition plus the merge —
//     the wall on a machine with Parallelism idle cores, where partitions
//     genuinely overlap. This is the number the partition-parallel design
//     is about; on a few-core host the measured Wall shows little of it.
//
// MergeMismatches counts merged statistics that differed from the
// single-pass build — the merge oracle, which must be 0 (the merge is exact).
type BuildArm struct {
	Parallelism      int
	Wall             time.Duration
	CriticalPathWall time.Duration
	// SpeedupX is serial Wall / CriticalPathWall; WallSpeedupX is serial
	// Wall / Wall (the single-core measurement, expected near or below 1).
	SpeedupX        float64
	WallSpeedupX    float64
	MergeMismatches int
}

// ManagerParity is the end-to-end check that the stats.Manager build path
// (SetBuildParallelism + partitioned scan + BuildMultiParallel) produces the
// same statistics as a serial manager, and that the parallel path actually
// engaged (counters from the obs registry).
type ManagerParity struct {
	Parallelism    int
	Statistics     int
	ParallelBuilds int64
	PartialsMerged int64
	Mismatches     int
}

// StatsBuildRow is the partition-parallel build benchmark over one database:
// the histogram for every indexed column is built Rounds times at each
// parallelism, over identical tuples.
type StatsBuildRow struct {
	DB         string
	Scale      float64
	Statistics int
	// Rows is the total tuple count summarized per build round.
	Rows   int64
	Rounds int
	Arms   []BuildArm
	// SpeedupX is the highest-parallelism arm's critical-path speedup over
	// serial; the acceptance bar for this bundle is >= 1.5x at 4 partitions.
	SpeedupX        float64
	MergeMismatches int
	Parity          *ManagerParity
}

// columnSet is one indexed column's gathered tuples.
type columnSet struct {
	table  string
	cols   []string
	tuples [][]catalog.Datum
}

// gatherIndexedColumns pulls the tuples of every indexed column once, so all
// arms time pure histogram construction over identical inputs.
func gatherIndexedColumns(env *Env) ([]columnSet, int64, error) {
	seen := map[string]bool{}
	var sets []columnSet
	var rows int64
	for _, ix := range env.DB.Schema.Indexes {
		key := ix.Table + "\x00" + ix.Column
		if seen[key] {
			continue
		}
		seen[key] = true
		td, err := env.DB.Table(ix.Table)
		if err != nil {
			return nil, 0, err
		}
		tuples, err := td.MultiColumnValues([]string{ix.Column})
		if err != nil {
			return nil, 0, err
		}
		sets = append(sets, columnSet{table: ix.Table, cols: []string{ix.Column}, tuples: tuples})
		rows += int64(len(tuples))
	}
	return sets, rows, nil
}

// runArm builds every column set rounds times at the given parallelism,
// timing each partition and merge separately. refs, when non-nil, holds the
// serial arm's results for the merge oracle.
func runArm(sets []columnSet, par, rounds int, refs []*histogram.MultiColumn) (BuildArm, []*histogram.MultiColumn, error) {
	arm := BuildArm{Parallelism: par}
	out := make([]*histogram.MultiColumn, len(sets))
	for r := 0; r < rounds; r++ {
		for i, cs := range sets {
			var mc *histogram.MultiColumn
			var err error
			if par <= 1 {
				t0 := time.Now()
				mc, err = histogram.BuildMulti(histogram.MaxDiff, cs.cols, cs.tuples, 0)
				d := time.Since(t0)
				arm.Wall += d
				arm.CriticalPathWall += d
			} else {
				t0 := time.Now()
				parts := histogram.SplitTuples(cs.tuples, par)
				splitWall := time.Since(t0)
				partials := make([]*histogram.Partial, len(parts))
				var sum, slowest time.Duration
				for j, p := range parts {
					t0 = time.Now()
					partials[j], err = histogram.BuildPartial(cs.cols, p)
					d := time.Since(t0)
					sum += d
					if d > slowest {
						slowest = d
					}
					if err != nil {
						return arm, nil, err
					}
				}
				t0 = time.Now()
				mc, err = histogram.MergePartials(histogram.MaxDiff, cs.cols, partials, 0)
				mergeWall := time.Since(t0)
				arm.Wall += splitWall + sum + mergeWall
				arm.CriticalPathWall += splitWall + slowest + mergeWall
			}
			if err != nil {
				return arm, nil, err
			}
			if r == 0 {
				out[i] = mc
				if refs != nil && !reflect.DeepEqual(mc, refs[i]) {
					arm.MergeMismatches++
				}
			}
		}
	}
	return arm, out, nil
}

// managerParity builds the full indexed-column statistic set through two
// stats.Managers over identical data — one serial, one at the given
// parallelism — and compares every published statistic.
func managerParity(dbName string, scale float64, par int) (*ManagerParity, error) {
	serialEnv, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	if err := serialEnv.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}
	parEnv, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	reg := obs.New()
	parEnv.Mgr.SetObsRegistry(reg)
	parEnv.Mgr.SetBuildParallelism(par)
	if err := parEnv.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}
	serial := map[stats.ID]*stats.Statistic{}
	for _, st := range serialEnv.Mgr.All() {
		serial[st.ID] = st
	}
	p := &ManagerParity{Parallelism: par}
	for _, st := range parEnv.Mgr.All() {
		p.Statistics++
		ref, ok := serial[st.ID]
		if !ok || !reflect.DeepEqual(st.Data, ref.Data) {
			p.Mismatches++
		}
	}
	snap := reg.Snapshot()
	p.ParallelBuilds = snap.Counters["stats.build.parallel_builds"]
	p.PartialsMerged = snap.Counters["stats.build.partials_merged"]
	return p, nil
}

// RunStatsBuild measures the partition-parallel histogram build: the same
// statistic set is built at each parallelism in pars (pars[0] must be 1, the
// serial reference) and every merged statistic is compared bit-for-bit
// against the serial build.
func RunStatsBuild(dbName string, scale float64, rounds int, pars []int) (*StatsBuildRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	if len(pars) == 0 || pars[0] != 1 {
		return nil, fmt.Errorf("bench: pars must start with the serial arm, got %v", pars)
	}
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	sets, rows, err := gatherIndexedColumns(env)
	if err != nil {
		return nil, err
	}
	row := &StatsBuildRow{DB: dbName, Scale: scale, Statistics: len(sets), Rows: rows, Rounds: rounds}
	var refs []*histogram.MultiColumn
	var serialWall time.Duration
	for _, par := range pars {
		arm, built, err := runArm(sets, par, rounds, refs)
		if err != nil {
			return nil, err
		}
		if par == 1 {
			refs, serialWall = built, arm.Wall
		} else {
			if arm.CriticalPathWall > 0 {
				arm.SpeedupX = float64(serialWall) / float64(arm.CriticalPathWall)
			}
			if arm.Wall > 0 {
				arm.WallSpeedupX = float64(serialWall) / float64(arm.Wall)
			}
			row.MergeMismatches += arm.MergeMismatches
			row.SpeedupX = arm.SpeedupX
		}
		row.Arms = append(row.Arms, arm)
	}
	parity, err := managerParity(dbName, scale, pars[len(pars)-1])
	if err != nil {
		return nil, err
	}
	row.Parity = parity
	row.MergeMismatches += parity.Mismatches
	return row, nil
}

// FoldRow is the incremental-maintenance demonstration: after a small DML
// batch, refreshing the table's statistics folds the logged deltas into the
// histograms instead of rescanning — the stats.build.full_scans counter does
// not move, and the charged cost is FoldCostUnits instead of BuildCostUnits.
type FoldRow struct {
	Table      string
	TableRows  int
	Statistics int
	DeltaRows  int
	// FullScansBefore/After bracket the refresh; equality is the "no rescan"
	// evidence the acceptance criteria ask for.
	FullScansBefore int64
	FullScansAfter  int64
	FoldsApplied    int64
	FoldedRows      int64
	// FoldCostUnits is what the refresh actually charged; RebuildCostUnits is
	// what full rebuilds of the same statistics would have charged.
	FoldCostUnits    float64
	RebuildCostUnits float64
	NoRescan         bool
}

// RunFoldDemo enables incremental maintenance on a fresh database, builds the
// indexed-column statistics, applies a small batch of inserts to the largest
// statistics-bearing table (copies of its own rows, so the schema stays
// valid), and refreshes that table.
func RunFoldDemo(dbName string, scale float64, deltaRows int) (*FoldRow, error) {
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	reg := obs.New()
	env.Mgr.SetObsRegistry(reg)
	if err := env.Mgr.SetIncrementalMaintenance(stats.FoldConfig{Enabled: true}); err != nil {
		return nil, err
	}
	if err := env.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}
	// The largest indexed table keeps the delta batch far below the fold
	// threshold (a tiny table would push the batch over MaxFoldFraction and
	// the refresh would — correctly — rebuild instead of folding).
	var td *storage.TableData
	var table string
	for _, ix := range env.DB.Schema.Indexes {
		t, err := env.DB.Table(ix.Table)
		if err != nil {
			return nil, err
		}
		if td == nil || t.RowCount() > td.RowCount() {
			td, table = t, ix.Table
		}
	}
	if td == nil {
		return nil, fmt.Errorf("bench: %s has no indexed columns", dbName)
	}
	onTable := env.Mgr.StatsOnTable(table)
	if len(onTable) == 0 {
		return nil, fmt.Errorf("bench: no statistics on %s", table)
	}
	if max := td.RowCount() / 20; deltaRows > max {
		deltaRows = max
	}
	if deltaRows < 1 {
		deltaRows = 1
	}

	// Re-insert copies of existing rows: valid by construction, and small
	// enough to stay under the fold threshold.
	var batch []storage.Row
	td.Scan(func(id int, r storage.Row) bool {
		batch = append(batch, append(storage.Row(nil), r...))
		return len(batch) < deltaRows
	})
	for _, r := range batch {
		if err := td.Insert(r); err != nil {
			return nil, err
		}
	}

	row := &FoldRow{
		Table:           table,
		Statistics:      len(onTable),
		DeltaRows:       len(batch),
		FullScansBefore: reg.Snapshot().Counters["stats.build.full_scans"],
	}
	acctBefore := env.Mgr.Snapshot()
	if _, err := env.Mgr.RefreshTable(table); err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	acct := env.Mgr.Snapshot()
	row.TableRows = td.RowCount()
	row.FullScansAfter = snap.Counters["stats.build.full_scans"]
	row.FoldsApplied = snap.Counters["stats.fold.applied"]
	row.FoldedRows = snap.Counters["stats.fold.rows"]
	row.FoldCostUnits = acct.TotalUpdateCost - acctBefore.TotalUpdateCost
	row.NoRescan = row.FullScansAfter == row.FullScansBefore
	for _, st := range env.Mgr.StatsOnTable(table) {
		row.RebuildCostUnits += histogram.BuildCostUnits(int64(td.RowCount()), len(st.Columns))
	}
	return row, nil
}

// PR7Summary is the machine-readable benchmark bundle for the sharded-
// manager / partition-parallel-build PR: the build speedup ladder with its
// merge oracle and manager-parity check, and the fold demonstration with its
// no-rescan evidence. Serialized to BENCH_PR7.json by cmd/experiments
// -benchjson7.
type PR7Summary struct {
	Scale float64
	DB    string
	Build *StatsBuildRow
	Fold  *FoldRow
	// SpeedupX and MergeMismatches are the headline gate numbers: the
	// highest-parallelism critical-path build speedup (must exceed 1x;
	// target >= 1.5x at 4 partitions) and the count of merged statistics
	// differing from the single-pass build (must be 0).
	SpeedupX        float64
	MergeMismatches int
}

// RunPR7 gathers the PR-7 benchmark bundle on TPCD_2 at the given scale.
func RunPR7(scale float64) (*PR7Summary, error) {
	const dbName = "TPCD_2"
	build, err := RunStatsBuild(dbName, scale, 20, []int{1, 2, 4})
	if err != nil {
		return nil, err
	}
	fold, err := RunFoldDemo(dbName, scale, 64)
	if err != nil {
		return nil, err
	}
	return &PR7Summary{
		Scale:           scale,
		DB:              dbName,
		Build:           build,
		Fold:            fold,
		SpeedupX:        build.SpeedupX,
		MergeMismatches: build.MergeMismatches,
	}, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR7Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
