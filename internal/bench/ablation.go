package bench

import (
	"math/rand"
	"strconv"
	"time"

	"autostats/internal/core"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
)

// AblationRow is one configuration point of an MNSA design-choice sweep.
type AblationRow struct {
	Label string
	// StatsCreated is the number of statistics MNSA built.
	StatsCreated int
	// CreationUnits includes optimizer-call overhead.
	CreationUnits  float64
	OptimizerCalls int
	// ExecCost is the workload execution cost under the resulting
	// statistics.
	ExecCost float64
	// ExecIncreasePct is relative to the all-candidates baseline.
	ExecIncreasePct float64
	Elapsed         time.Duration
}

// runMNSAPoint runs MNSA with cfg on a fresh environment and returns a row.
func runMNSAPoint(dbName, wlName string, scale float64, seed int64, label string, baselineExec float64, cfg core.Config) (*AblationRow, error) {
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	w, err := env.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	wr, err := core.RunMNSAWorkload(env.Sess, w.Queries(), cfg)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	exec, err := env.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Label:           label,
		StatsCreated:    len(wr.Created),
		CreationUnits:   env.Mgr.TotalBuildCost + float64(wr.OptimizerCalls)*OptimizerCallUnits,
		OptimizerCalls:  wr.OptimizerCalls,
		ExecCost:        exec,
		ExecIncreasePct: PctIncrease(baselineExec, exec),
		Elapsed:         elapsed,
	}, nil
}

// baselineExec measures workload execution cost with every candidate built.
func baselineExec(dbName, wlName string, scale float64, seed int64) (float64, error) {
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return 0, err
	}
	w, err := env.Workload(wlName, seed)
	if err != nil {
		return 0, err
	}
	if _, _, err := env.createAll(core.WorkloadCandidates(w.Queries(), core.CandidateStats)); err != nil {
		return 0, err
	}
	return env.ExecuteQueries(w)
}

// AblationThreshold sweeps the t-optimizer-cost equivalence threshold
// (DESIGN.md: t ∈ {5, 10, 20, 40}). Larger t means a laxer equivalence test,
// fewer statistics, and potentially worse plans — the cost/accuracy dial of
// §3.2.
func AblationThreshold(dbName, wlName string, scale float64, seed int64, thresholds []float64) ([]*AblationRow, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{5, 10, 20, 40}
	}
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	var rows []*AblationRow
	for _, t := range thresholds {
		cfg := core.DefaultConfig()
		cfg.T = t
		row, err := runMNSAPoint(dbName, wlName, scale, seed, labelFloat("t=", t, "%%"), base, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationEpsilon sweeps ε, the extreme-selectivity pin of §4.1. Larger ε
// narrows the tested selectivity range, weakening the guarantee for very
// selective predicates.
func AblationEpsilon(dbName, wlName string, scale float64, seed int64, epsilons []float64) ([]*AblationRow, error) {
	if len(epsilons) == 0 {
		epsilons = []float64{0.0005, 0.005, 0.05, 0.2}
	}
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	var rows []*AblationRow
	for _, eps := range epsilons {
		cfg := core.DefaultConfig()
		cfg.Epsilon = eps
		row, err := runMNSAPoint(dbName, wlName, scale, seed, labelFloat("eps=", eps, ""), base, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationNextStat compares the §4.2 most-expensive-operator heuristic
// against a seeded random choice of the next statistic to build. The
// heuristic should converge in fewer created statistics and optimizer calls.
func AblationNextStat(dbName, wlName string, scale float64, seed int64) ([]*AblationRow, error) {
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	heuristic, err := runMNSAPoint(dbName, wlName, scale, seed, "most-expensive-operator", base, core.DefaultConfig())
	if err != nil {
		return nil, err
	}

	// Random arm: run MNSA-with-random-pick via the core RandomNextStat hook.
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(seed))
	cfg.NextStatFn = func(p *optimizer.Plan, cands []core.Candidate, mgr *stats.Manager, consumed map[stats.ID]bool, missing []int) []core.Candidate {
		var avail []core.Candidate
		for _, c := range cands {
			if !consumed[c.ID()] && !mgr.Has(c.ID()) {
				avail = append(avail, c)
			}
		}
		if len(avail) == 0 {
			return nil
		}
		return []core.Candidate{avail[rng.Intn(len(avail))]}
	}
	random, err := runMNSAPoint(dbName, wlName, scale, seed, "random-pick", base, cfg)
	if err != nil {
		return nil, err
	}
	return []*AblationRow{heuristic, random}, nil
}

func labelFloat(prefix string, v float64, suffix string) string {
	return prefix + strconv.FormatFloat(v, 'g', -1, 64) + suffix
}

// AblationShrinkFast compares the Figure 2 Shrinking Set algorithm against
// the §5.2 seeded variant (ShrinkingSetFast) on one workload: survivors and
// optimizer-call counts.
func AblationShrinkFast(dbName, wlName string, scale float64, seed int64) (slowKept, slowCalls, fastKept, fastCalls int, err error) {
	run := func(fast bool) (int, int, error) {
		env, err := NewEnv(dbName, scale)
		if err != nil {
			return 0, 0, err
		}
		w, err := env.Workload(wlName, seed)
		if err != nil {
			return 0, 0, err
		}
		queries := w.Queries()
		for _, c := range core.WorkloadCandidates(queries, core.CandidateStats) {
			if _, err := env.Mgr.Create(c.Table, c.Columns); err != nil {
				return 0, 0, err
			}
		}
		var sr *core.ShrinkResult
		if fast {
			sr, err = core.ShrinkingSetFast(env.Sess, queries, nil, core.ExecutionTree{})
		} else {
			sr, err = core.ShrinkingSet(env.Sess, queries, nil, core.ExecutionTree{})
		}
		if err != nil {
			return 0, 0, err
		}
		return len(sr.Kept), sr.OptimizerCalls, nil
	}
	slowKept, slowCalls, err = run(false)
	if err != nil {
		return
	}
	fastKept, fastCalls, err = run(true)
	return
}

// AblationCostWeighted sweeps the §6 cost-coverage knob: MNSA restricted to
// the most expensive queries covering X% of estimated workload cost.
func AblationCostWeighted(dbName, wlName string, scale float64, seed int64, coverages []float64) ([]*AblationRow, error) {
	if len(coverages) == 0 {
		coverages = []float64{1.0, 0.9, 0.7, 0.5}
	}
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	var rows []*AblationRow
	for _, cov := range coverages {
		env, err := NewEnv(dbName, scale)
		if err != nil {
			return nil, err
		}
		w, err := env.Workload(wlName, seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		wr, tuned, err := core.RunMNSACostWeighted(env.Sess, w.Queries(), core.DefaultConfig(), cov)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		exec, err := env.ExecuteQueries(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, &AblationRow{
			Label:           labelFloat("coverage=", cov, "") + labelFloat(" (", float64(tuned), " queries)"),
			StatsCreated:    len(wr.Created),
			CreationUnits:   env.Mgr.TotalBuildCost + float64(wr.OptimizerCalls)*OptimizerCallUnits,
			OptimizerCalls:  wr.OptimizerCalls,
			ExecCost:        exec,
			ExecIncreasePct: PctIncrease(base, exec),
			Elapsed:         elapsed,
		})
	}
	return rows, nil
}

// AblationHistogramKind compares MaxDiff against equi-depth histograms under
// the same MNSA configuration — the §1 claim that the selection algorithms
// are oblivious to the statistics structure, with the quality difference the
// histogram choice itself makes.
func AblationHistogramKind(dbName, wlName string, scale float64, seed int64) ([]*AblationRow, error) {
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	var rows []*AblationRow
	for _, kind := range []histogram.Kind{histogram.MaxDiff, histogram.EquiDepth} {
		env, err := NewEnv(dbName, scale)
		if err != nil {
			return nil, err
		}
		// Swap the manager's histogram kind by rebuilding the environment
		// plumbing with the alternative kind.
		env.Mgr = stats.NewManager(env.DB, kind, 0)
		env.Sess = optimizer.NewSession(env.Mgr)
		w, err := env.Workload(wlName, seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		wr, err := core.RunMNSAWorkload(env.Sess, w.Queries(), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		exec, err := env.ExecuteQueries(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, &AblationRow{
			Label:           kind.String(),
			StatsCreated:    len(wr.Created),
			CreationUnits:   env.Mgr.TotalBuildCost + float64(wr.OptimizerCalls)*OptimizerCallUnits,
			OptimizerCalls:  wr.OptimizerCalls,
			ExecCost:        exec,
			ExecIncreasePct: PctIncrease(base, exec),
			Elapsed:         elapsed,
		})
	}
	return rows, nil
}

// AblationSampling sweeps the statistics-construction sample fraction: the
// §2 complementary technique. Creation cost falls with the sample size while
// MNSA keeps pruning the candidate space on top.
func AblationSampling(dbName, wlName string, scale float64, seed int64, fractions []float64) ([]*AblationRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{1.0, 0.25, 0.1, 0.05}
	}
	base, err := baselineExec(dbName, wlName, scale, seed)
	if err != nil {
		return nil, err
	}
	var rows []*AblationRow
	for _, f := range fractions {
		env, err := NewEnv(dbName, scale)
		if err != nil {
			return nil, err
		}
		if f < 1 {
			if err := env.Mgr.SetSampling(stats.SampleConfig{Fraction: f, MinRows: 100, Seed: seed}); err != nil {
				return nil, err
			}
		}
		w, err := env.Workload(wlName, seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		wr, err := core.RunMNSAWorkload(env.Sess, w.Queries(), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		exec, err := env.ExecuteQueries(w)
		if err != nil {
			return nil, err
		}
		rows = append(rows, &AblationRow{
			Label:           labelFloat("sample=", f, ""),
			StatsCreated:    len(wr.Created),
			CreationUnits:   env.Mgr.TotalBuildCost + float64(wr.OptimizerCalls)*OptimizerCallUnits,
			OptimizerCalls:  wr.OptimizerCalls,
			ExecCost:        exec,
			ExecIncreasePct: PctIncrease(base, exec),
			Elapsed:         elapsed,
		})
	}
	return rows, nil
}
