package bench

import (
	"fmt"
	"time"

	"autostats/internal/core"
	"autostats/internal/query"
	"autostats/internal/stats"
	"autostats/internal/workload"
)

// OptimizerCallUnits charges one full optimization at the equivalent of
// scanning a few hundred rows when folding MNSA's overhead into "statistics
// creation cost" (§8.2 includes the overhead; §4.3: "the time to create a
// statistic typically far exceeds the time to optimize a query").
const OptimizerCallUnits = 200.0

// createAll builds every candidate in order and returns (cost units, wall
// time) charged by the statistics manager.
func (e *Env) createAll(cands []core.Candidate) (float64, time.Duration, error) {
	e.Mgr.ResetAccounting()
	for _, c := range cands {
		if _, err := e.Mgr.Create(c.Table, c.Columns); err != nil {
			return 0, 0, err
		}
	}
	return e.Mgr.TotalBuildCost, e.Mgr.TotalBuildTime, nil
}

// ---------------------------------------------------------------------------
// §1 motivating experiment
// ---------------------------------------------------------------------------

// IntroRow is one TPCD-ORIG query's before/after comparison.
type IntroRow struct {
	Query       int
	PlanChanged bool
	// ExecBefore/ExecAfter are the execution costs (work units) of the plan
	// chosen without vs. with the additional column statistics.
	ExecBefore, ExecAfter float64
}

// IntroResult is the §1 experiment: on a tuned database (statistics only on
// indexed columns), how many of the 17 TPCD-ORIG query plans change — and
// improve — once relevant statistics are created. The paper observed all but
// 2 plans changed, with improved execution cost.
type IntroResult struct {
	DB      string
	Rows    []IntroRow
	Changed int
	// Improved counts changed plans whose execution cost did not get more
	// than noise-level (5 %) worse.
	Improved int
	// Worse counts changed plans that regressed beyond the 5 % noise band.
	Worse int
}

// Intro runs the §1 experiment on the named database.
func Intro(dbName string, scale float64) (*IntroResult, error) {
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	if err := env.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}
	w, err := workload.TPCDOrig(env.DB.Schema)
	if err != nil {
		return nil, err
	}
	queries := w.Queries()

	before := make([]*planExec, len(queries))
	for i, q := range queries {
		pe, err := env.planAndRun(q)
		if err != nil {
			return nil, fmt.Errorf("bench: intro Q%d before: %w", i+1, err)
		}
		before[i] = pe
	}
	// "We then created a set of relevant statistics for the workload":
	// all §7.1 candidates for the 17 queries.
	if _, _, err := env.createAll(core.WorkloadCandidates(queries, core.CandidateStats)); err != nil {
		return nil, err
	}
	res := &IntroResult{DB: dbName}
	for i, q := range queries {
		after, err := env.planAndRun(q)
		if err != nil {
			return nil, fmt.Errorf("bench: intro Q%d after: %w", i+1, err)
		}
		row := IntroRow{
			Query:       i + 1,
			PlanChanged: after.sig != before[i].sig,
			ExecBefore:  before[i].execCost,
			ExecAfter:   after.execCost,
		}
		if row.PlanChanged {
			res.Changed++
			if row.ExecAfter <= row.ExecBefore*1.05 {
				res.Improved++
			} else {
				res.Worse++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

type planExec struct {
	sig      string
	estCost  float64
	execCost float64
}

func (e *Env) planAndRun(q *query.Select) (*planExec, error) {
	plan, err := e.Sess.Optimize(q)
	if err != nil {
		return nil, err
	}
	res, err := e.Ex.Run(plan)
	if err != nil {
		return nil, err
	}
	return &planExec{sig: plan.Signature(), estCost: plan.Cost(), execCost: res.Cost}, nil
}

// ---------------------------------------------------------------------------
// Figure 3 — Candidate Statistics algorithm vs Exhaustive
// ---------------------------------------------------------------------------

// Fig3Row compares the §7.1 candidate algorithm against the exhaustive
// baseline on one (database, workload) cell.
type Fig3Row struct {
	DB, Workload string
	// Statistic counts proposed by each algorithm (workload union).
	ExhaustiveCount, CandidateCount int
	// Creation cost in work units and wall time.
	ExhaustiveUnits, CandidateUnits float64
	ExhaustiveTime, CandidateTime   time.Duration
	// CreationReductionPct is the paper's Figure 3 metric (50–80 % in the
	// paper), computed over work units; WallReductionPct is the wall-clock
	// counterpart.
	CreationReductionPct float64
	WallReductionPct     float64
	// ExecIncreasePct is the workload execution cost increase due to the
	// pruned statistics (≤ 3 % in the paper).
	ExecIncreasePct float64
}

// Figure3 runs one cell of Figure 3.
func Figure3(dbName, wlName string, scale float64, seed int64) (*Fig3Row, error) {
	envEx, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	w, err := envEx.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	queries := w.Queries()

	exCands := core.WorkloadCandidates(queries, core.ExhaustiveStats)
	exUnits, exTime, err := envEx.createAll(exCands)
	if err != nil {
		return nil, err
	}
	exExec, err := envEx.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}

	envCand, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	cands := core.WorkloadCandidates(queries, core.CandidateStats)
	candUnits, candTime, err := envCand.createAll(cands)
	if err != nil {
		return nil, err
	}
	candExec, err := envCand.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}

	return &Fig3Row{
		DB:                   dbName,
		Workload:             wlName,
		ExhaustiveCount:      len(exCands),
		CandidateCount:       len(cands),
		ExhaustiveUnits:      exUnits,
		CandidateUnits:       candUnits,
		ExhaustiveTime:       exTime,
		CandidateTime:        candTime,
		CreationReductionPct: PctReduction(exUnits, candUnits),
		WallReductionPct:     PctReduction(float64(exTime), float64(candTime)),
		ExecIncreasePct:      PctIncrease(exExec, candExec),
	}, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — MNSA vs creating all candidate statistics
// ---------------------------------------------------------------------------

// Fig4Row compares MNSA against creating every candidate statistic on one
// (database, workload) cell.
type Fig4Row struct {
	DB, Workload string
	// AllCount/MNSACount are the numbers of statistics created.
	AllCount, MNSACount int
	// Creation cost in units; MNSAUnits includes the optimizer-call
	// overhead (§8.2 includes MNSA overhead in creation time).
	AllUnits, MNSAUnits float64
	AllTime, MNSATime   time.Duration
	OptimizerCalls      int
	// CreationReductionPct is the Figure 4 metric (30–45 % in the paper).
	CreationReductionPct float64
	WallReductionPct     float64
	// ExecIncreasePct is the workload execution-cost increase (≤ 2 % in the
	// paper).
	ExecIncreasePct float64
}

// Figure4 runs one cell of Figure 4. candidateFn selects the candidate space
// (core.CandidateStats for the headline figure, core.SingleColumnCandidates
// for the §8.2 single-column variant).
func Figure4(dbName, wlName string, scale float64, seed int64, candidateFn func(*query.Select) []core.Candidate) (*Fig4Row, error) {
	if candidateFn == nil {
		candidateFn = core.CandidateStats
	}
	// Arm A: all candidate statistics.
	envAll, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	w, err := envAll.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	queries := w.Queries()
	allCands := core.WorkloadCandidates(queries, candidateFn)
	allUnits, allTime, err := envAll.createAll(allCands)
	if err != nil {
		return nil, err
	}
	allExec, err := envAll.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}

	// Arm B: MNSA over the same candidate space.
	envM, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.CandidateFn = candidateFn
	envM.Mgr.ResetAccounting()
	start := time.Now()
	wr, err := core.RunMNSAWorkload(envM.Sess, queries, cfg)
	if err != nil {
		return nil, err
	}
	mnsaTime := time.Since(start)
	mnsaUnits := envM.Mgr.TotalBuildCost + float64(wr.OptimizerCalls)*OptimizerCallUnits
	mnsaExec, err := envM.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}

	return &Fig4Row{
		DB:                   dbName,
		Workload:             wlName,
		AllCount:             len(allCands),
		MNSACount:            len(wr.Created),
		AllUnits:             allUnits,
		MNSAUnits:            mnsaUnits,
		AllTime:              allTime,
		MNSATime:             mnsaTime,
		OptimizerCalls:       wr.OptimizerCalls,
		CreationReductionPct: PctReduction(allUnits, mnsaUnits),
		WallReductionPct:     PctReduction(float64(allTime), float64(mnsaTime)),
		ExecIncreasePct:      PctIncrease(allExec, mnsaExec),
	}, nil
}

// ---------------------------------------------------------------------------
// Table 1 — MNSA/D vs MNSA statistics update cost (U25-C-100)
// ---------------------------------------------------------------------------

// Table1Row compares the maintenance burden of the statistics sets left
// behind by MNSA and MNSA/D on one database.
type Table1Row struct {
	DB string
	// Created/DropListed statistic counts under MNSA/D.
	MNSACount, MNSADCount, DropListed int
	// UpdateUnits is the cost of one refresh cycle over the maintained set
	// (Table 1's metric; the paper reports 30–34 % reduction).
	MNSAUpdateUnits, MNSADUpdateUnits float64
	UpdateReductionPct                float64
	// ReplayUpdateUnits accumulates actual refresh cost while replaying the
	// workload's DML under the SQL Server-style maintenance policy.
	ReplayMNSAUnits, ReplayMNSADUnits float64
	ReplayReductionPct                float64
	// ExecIncreasePct is the §8.2 re-run check: execution-cost increase
	// after physically dropping the drop-listed statistics (≤ 6 % in the
	// paper, worst on TPCD_4).
	ExecIncreasePct float64
}

// Table1 runs one row of Table 1 on the named database with the U25-C-100
// workload (paper configuration), or any workload name passed in.
func Table1(dbName, wlName string, scale float64, seed int64) (*Table1Row, error) {
	// Arm A: plain MNSA.
	envA, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	w, err := envA.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	queries := w.Queries()
	cfg := core.DefaultConfig()
	wrA, err := core.RunMNSAWorkload(envA.Sess, queries, cfg)
	if err != nil {
		return nil, err
	}
	updateA := envA.Mgr.MaintenanceCostUnits()

	// Arm B: MNSA/D.
	envB, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	cfgD := cfg
	cfgD.Drop = true
	wrB, err := core.RunMNSAWorkload(envB.Sess, queries, cfgD)
	if err != nil {
		return nil, err
	}
	updateB := envB.Mgr.MaintenanceCostUnits()

	// Replay the full workload (queries + DML) under the maintenance policy
	// and accumulate actual refresh cost.
	replayA, err := replayWithMaintenance(envA, w)
	if err != nil {
		return nil, err
	}
	replayB, err := replayWithMaintenance(envB, w)
	if err != nil {
		return nil, err
	}

	// §8.2 re-run check: physically drop the drop-listed statistics, then
	// re-run the workload queries and compare against arm A. Fresh
	// environments keep the data identical after the replay's DML.
	envA2, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	for _, id := range wrA.Created {
		st := envA.Mgr.Get(id)
		if st == nil {
			continue
		}
		if _, err := envA2.Mgr.Create(st.Table, st.Columns); err != nil {
			return nil, err
		}
	}
	execA, err := envA2.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}
	envB2, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	dropped := map[stats.ID]bool{}
	for _, id := range wrB.DropListed {
		dropped[id] = true
	}
	for _, id := range wrB.Created {
		if dropped[id] {
			continue
		}
		st := envB.Mgr.Get(id)
		if st == nil {
			continue
		}
		if _, err := envB2.Mgr.Create(st.Table, st.Columns); err != nil {
			return nil, err
		}
	}
	execB, err := envB2.ExecuteQueries(w)
	if err != nil {
		return nil, err
	}

	return &Table1Row{
		DB:                 dbName,
		MNSACount:          len(wrA.Created),
		MNSADCount:         len(wrB.Created),
		DropListed:         len(wrB.DropListed),
		MNSAUpdateUnits:    updateA,
		MNSADUpdateUnits:   updateB,
		UpdateReductionPct: PctReduction(updateA, updateB),
		ReplayMNSAUnits:    replayA,
		ReplayMNSADUnits:   replayB,
		ReplayReductionPct: PctReduction(replayA, replayB),
		ExecIncreasePct:    PctIncrease(execA, execB),
	}, nil
}

// replayWithMaintenance executes the whole workload, running the SQL
// Server-style maintenance policy every 25 statements, and returns the
// statistics update cost charged.
func replayWithMaintenance(e *Env, w *workload.Workload) (float64, error) {
	e.Mgr.ResetAccounting()
	policy := stats.DefaultMaintenancePolicy()
	policy.MaxUpdates = 0 // measure pure update cost; no drops during replay
	for i, stmt := range w.Statements {
		if _, err := e.Ex.RunStatement(e.Sess, stmt); err != nil {
			return 0, err
		}
		if (i+1)%25 == 0 {
			if _, err := e.Mgr.RunMaintenance(policy); err != nil {
				return 0, err
			}
		}
	}
	return e.Mgr.TotalUpdateCost, nil
}
