package bench

import (
	"fmt"
	"time"

	"autostats/internal/feedback"
	"autostats/internal/query"
	"autostats/internal/sqlparser"
	"autostats/internal/stats"
)

// FeedbackRow is the PR-3 loop-closing demo on skewed TPC-D: a DML burst
// shifts the l_quantity skew while rewriting too few rows to trip the
// row-modification counter, the stale histogram misestimates the demo query
// by orders of magnitude, and the q-error evidence alone triggers the refresh
// that fixes both the estimate and the chosen plan.
type FeedbackRow struct {
	DB string
	// ModifiedPct is the fraction of lineitem rows the skew shift rewrote, in
	// percent — below the 20 % counter threshold by construction.
	ModifiedPct float64
	// EstBefore/ActualRows are the stale filtered-row estimate and the true
	// cardinality of the lineitem predicate; QErrBefore is their q-error.
	EstBefore  float64
	ActualRows int64
	QErrBefore float64
	// CounterRefreshes (expected 0) and FeedbackRefreshes (expected >= 1)
	// are the two refresh paths of the maintenance pass.
	CounterRefreshes  int
	FeedbackRefreshes int
	// QErrAfter is the q-error observed re-running the query post-refresh.
	QErrAfter float64
	// PlanBefore/PlanAfter are execution-tree signatures around the refresh.
	PlanBefore, PlanAfter string
	PlanChanged           bool
}

// feedbackDemoSQL is the demo query: the l_quantity predicate's estimate
// decides between an index-nested-loop and a hash join against orders.
const feedbackDemoSQL = "SELECT o_orderdate FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45"

// FeedbackDemo runs the demo on TPCD_2 at the given scale. Corrections are
// deliberately left detached so the plan change is attributable to the
// feedback-triggered refresh alone.
func FeedbackDemo(scale float64) (*FeedbackRow, error) {
	env, err := NewEnv("TPCD_2", scale)
	if err != nil {
		return nil, err
	}
	if err := env.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}
	if _, err := env.Mgr.Create("lineitem", []string{"l_quantity"}); err != nil {
		return nil, err
	}
	led := feedback.NewLedger(feedback.ManagerVersions(env.Mgr), feedback.Config{MinObservations: 2})
	env.Ex.SetFeedback(led)
	env.Mgr.SetFeedbackProvider(led)

	// Skew shift: under z=2 about 16 % of lineitem rows carry the
	// second-ranked quantity value (1.98 — the generator spaces 50 floats
	// across [1,50]); moving them to 50 relocates that probability mass into
	// the query range while staying under the 20 % refresh threshold.
	td, err := env.DB.Table("lineitem")
	if err != nil {
		return nil, err
	}
	rows := td.RowCount()
	upd, err := sqlparser.Parse(env.DB.Schema, "UPDATE lineitem SET l_quantity = 50 WHERE l_quantity > 1.5 AND l_quantity < 2.5")
	if err != nil {
		return nil, err
	}
	updRes, err := env.Ex.RunStatement(env.Sess, upd)
	if err != nil {
		return nil, err
	}
	row := &FeedbackRow{DB: env.DBName, ModifiedPct: 100 * float64(updRes.Affected) / float64(rows)}

	q, err := sqlparser.ParseSelect(env.DB.Schema, feedbackDemoSQL)
	if err != nil {
		return nil, err
	}
	sig, err := runDemoQuery(env, q, 2)
	if err != nil {
		return nil, err
	}
	row.PlanBefore = sig
	if e, ok := lineitemEntry(led); ok {
		row.EstBefore, row.ActualRows, row.QErrBefore = e.LastEst, e.LastActual, e.MaxQ
	} else {
		return nil, fmt.Errorf("bench: no feedback evidence for lineitem before maintenance")
	}

	rep, err := env.Mgr.RunMaintenance(stats.DefaultFeedbackPolicy())
	if err != nil {
		return nil, err
	}
	row.CounterRefreshes = rep.TablesRefreshed
	row.FeedbackRefreshes = rep.StatsFeedbackRefreshed

	sig, err = runDemoQuery(env, q, 2)
	if err != nil {
		return nil, err
	}
	row.PlanAfter = sig
	row.PlanChanged = row.PlanAfter != row.PlanBefore
	if e, ok := lineitemEntry(led); ok {
		row.QErrAfter = e.MaxQ
	} else {
		return nil, fmt.Errorf("bench: no feedback evidence for lineitem after refresh")
	}
	return row, nil
}

// runDemoQuery optimizes and executes q n times (enough to clear the
// ledger's observation minimum) and returns the plan signature.
func runDemoQuery(env *Env, q *query.Select, n int) (string, error) {
	var sig string
	for i := 0; i < n; i++ {
		plan, err := env.Sess.Optimize(q)
		if err != nil {
			return "", err
		}
		if _, err := env.Ex.Run(plan); err != nil {
			return "", err
		}
		sig = plan.Signature()
	}
	return sig, nil
}

// lineitemEntry finds the current-window ledger entry for the lineitem scan.
func lineitemEntry(led *feedback.Ledger) (feedback.EntrySnapshot, bool) {
	for _, e := range led.Entries() {
		if e.Key.Table == "lineitem" && e.Current {
			return e, true
		}
	}
	return feedback.EntrySnapshot{}, false
}

// FeedbackOverheadRow measures the wall-clock cost of actual-cardinality
// capture: the same query batch executed with feedback detached vs attached.
type FeedbackOverheadRow struct {
	DB          string
	QueriesRun  int
	OffWall     time.Duration
	OnWall      time.Duration
	OverheadPct float64
	// Observations is the number of node observations the enabled arm fed to
	// the ledger (a sanity check that capture actually ran).
	Observations uint64
}

// FeedbackOverhead executes the demo query repeatedly on identically seeded
// databases with capture off and on. iters <= 0 means 50.
func FeedbackOverhead(scale float64, iters int) (*FeedbackOverheadRow, error) {
	if iters <= 0 {
		iters = 50
	}
	run := func(withFeedback bool) (time.Duration, uint64, error) {
		env, err := NewEnv("TPCD_2", scale)
		if err != nil {
			return 0, 0, err
		}
		if err := env.CreateIndexedColumnStats(); err != nil {
			return 0, 0, err
		}
		var led *feedback.Ledger
		if withFeedback {
			led = feedback.NewLedger(feedback.ManagerVersions(env.Mgr), feedback.Config{})
			env.Ex.SetFeedback(led)
		}
		q, err := sqlparser.ParseSelect(env.DB.Schema, feedbackDemoSQL)
		if err != nil {
			return 0, 0, err
		}
		plan, err := env.Sess.Optimize(q)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := env.Ex.Run(plan); err != nil {
				return 0, 0, err
			}
		}
		wall := time.Since(start)
		if led != nil {
			return wall, led.Stats().Observations, nil
		}
		return wall, 0, nil
	}
	offWall, _, err := run(false)
	if err != nil {
		return nil, err
	}
	onWall, obsCount, err := run(true)
	if err != nil {
		return nil, err
	}
	return &FeedbackOverheadRow{
		DB:           "TPCD_2",
		QueriesRun:   iters,
		OffWall:      offWall,
		OnWall:       onWall,
		OverheadPct:  PctIncrease(float64(offWall), float64(onWall)),
		Observations: obsCount,
	}, nil
}
