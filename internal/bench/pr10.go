package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autostats/client"
	"autostats/internal/chaos"
	"autostats/internal/protocol"
	"autostats/internal/resilience"
	"autostats/internal/server"
)

// ChaosSwarmConfig shapes the PR 10 chaos swarm: the PR 8 swarm run through
// the fault-injecting proxy with the server's robustness limits enabled.
type ChaosSwarmConfig struct {
	Sessions           int
	Tenants            int
	RequestsPerSession int
	// Seed drives the proxy's fault decisions.
	Seed int64
	// Latency is injected per forwarded chunk per direction (default 10ms).
	Latency time.Duration
	// FaultProb is the per-chunk probability of each fault kind — corrupt,
	// tear, reset (default 0.01).
	FaultProb float64
	// TenantRPS enables the server's per-tenant quota so rate_limited shows
	// up in the rejection mix (default 500).
	TenantRPS float64
}

func (c *ChaosSwarmConfig) fill() {
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.RequestsPerSession <= 0 {
		c.RequestsPerSession = 4
	}
	if c.Latency == 0 {
		c.Latency = 10 * time.Millisecond
	}
	if c.FaultProb == 0 {
		c.FaultProb = 0.01
	}
	if c.TenantRPS == 0 {
		c.TenantRPS = 500
	}
}

// ChaosSwarmResult aggregates the chaos swarm. Unlike the clean PR 8 swarm,
// failures are EXPECTED here — the proxy is tearing frames and resetting
// connections — so they are classified into a rejection mix rather than
// failing the run. The gates are the robustness invariants: zero hangs,
// zero leaked goroutines, a clean drain.
type ChaosSwarmResult struct {
	Sessions   int
	Tenants    int
	Requests   int64
	OK         int64
	Wall       time.Duration
	Throughput float64 // successful requests per second
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
	// RejectionMix buckets every failed request by cause: the typed protocol
	// codes (rate_limited, overloaded, timeout, draining, ...) plus conn_lost
	// (in-flight transport loss) and transport (dial/other).
	RejectionMix map[string]int64
	// Hangs counts calls exceeding the 30s hang budget — the gate is 0.
	Hangs int64
	Proxy chaos.Stats
	Drain server.DrainReport
	// GoroutinesLeaked is the post-shutdown goroutine count above the
	// pre-start baseline that never settled — the gate is 0.
	GoroutinesLeaked int
}

// PR10Summary is the machine-readable bundle for the network-robustness PR,
// serialized to BENCH_PR10.json by cmd/experiments -benchjson10. Gates:
// Hangs == 0, GoroutinesLeaked == 0, Drain.Dropped == 0, OK > 0.
type PR10Summary struct {
	Scale float64
	Chaos *ChaosSwarmResult
}

const chaosHangBudget = 30 * time.Second

// classifyRejection buckets one failed request for the rejection mix.
func classifyRejection(err error) string {
	switch {
	case errors.Is(err, protocol.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, protocol.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, protocol.ErrTimeout):
		return "server_timeout"
	case errors.Is(err, protocol.ErrDraining):
		return "draining"
	case errors.Is(err, context.DeadlineExceeded):
		return "client_timeout"
	case errors.Is(err, client.ErrConnLost):
		return "conn_lost"
	case strings.Contains(err.Error(), "protocol: "):
		return "protocol_other"
	default:
		return "transport"
	}
}

// RunChaosSwarm starts a hardened in-process server, fronts it with the
// fault-injecting proxy, and drives the full swarm through the chaos.
func RunChaosSwarm(scale float64, cfg ChaosSwarmConfig) (*ChaosSwarmResult, error) {
	cfg.fill()
	baselineGoroutines := runtime.NumGoroutine()

	srv, err := server.New(server.Config{
		Addr:               "127.0.0.1:0",
		Workers:            8,
		QueueDepth:         2 * cfg.Sessions,
		MaxTenants:         cfg.Tenants + 1,
		ReadTimeout:        30 * time.Second,
		WriteTimeout:       10 * time.Second,
		RequestTimeout:     15 * time.Second,
		MaxInflightPerConn: 64,
		TenantRPS:          cfg.TenantRPS,
		NewTenant:          tenantFactory(scale),
		Name:               "chaos-swarm",
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	proxy, err := chaos.New(srv.Addr().String(), chaos.Config{
		Seed:        cfg.Seed,
		Latency:     cfg.Latency,
		Jitter:      cfg.Latency / 2,
		CorruptProb: cfg.FaultProb,
		TearProb:    cfg.FaultProb,
		ResetProb:   cfg.FaultProb,
	})
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		srv.Shutdown(ctx)
		cancel()
		return nil, err
	}

	var (
		wg        sync.WaitGroup
		requests  atomic.Int64
		okCalls   atomic.Int64
		hangs     atomic.Int64
		mixMu     sync.Mutex
		mix       = make(map[string]int64)
		latMu     sync.Mutex
		latencies []time.Duration
	)
	reject := func(err error) {
		mixMu.Lock()
		mix[classifyRejection(err)]++
		mixMu.Unlock()
	}

	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%cfg.Tenants)
			c, err := client.Dial(proxy.Addr().String(), client.Options{
				Tenant:         tenant,
				DialTimeout:    5 * time.Second,
				HelloTimeout:   5 * time.Second,
				RequestTimeout: 20 * time.Second,
				Retry:          resilience.Retry{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond},
			})
			if err != nil {
				reject(err)
				return
			}
			defer c.Close()
			local := make([]time.Duration, 0, cfg.RequestsPerSession)
			for j := 0; j < cfg.RequestsPerSession; j++ {
				sql := swarmTemplates[(i+j)%len(swarmTemplates)]
				requests.Add(1)
				t0 := time.Now()
				ctx, cancel := context.WithTimeout(context.Background(), chaosHangBudget)
				_, err := c.Exec(ctx, sql)
				cancel()
				d := time.Since(t0)
				if d >= chaosHangBudget {
					hangs.Add(1)
				}
				if err != nil {
					reject(err)
					continue // chaos killed this request; the session carries on
				}
				okCalls.Add(1)
				local = append(local, d)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &ChaosSwarmResult{
		Sessions:     cfg.Sessions,
		Tenants:      cfg.Tenants,
		Requests:     requests.Load(),
		OK:           okCalls.Load(),
		Wall:         wall,
		Hangs:        hangs.Load(),
		RejectionMix: mix,
		Proxy:        proxy.Stats(),
	}
	if wall > 0 {
		res.Throughput = float64(res.OK) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		res.P50 = latencies[len(latencies)/2]
		res.P99 = latencies[len(latencies)*99/100]
		res.Max = latencies[len(latencies)-1]
	}

	proxy.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	res.Drain = srv.Shutdown(sctx)
	cancel()

	// Let connection and pump goroutines unwind before measuring the leak.
	const slack = 5
	leaked := 0
	for deadline := time.Now().Add(10 * time.Second); ; {
		leaked = runtime.NumGoroutine() - baselineGoroutines
		if leaked <= slack || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if leaked > slack {
		res.GoroutinesLeaked = leaked
	}
	return res, nil
}

// RunPR10 gathers the network-robustness benchmark bundle: the full-size
// swarm run through 10ms/1% chaos with quotas, deadlines, and slow-client
// defense enabled.
func RunPR10(scale float64, sessions, tenants int) (*PR10Summary, error) {
	res, err := RunChaosSwarm(scale, ChaosSwarmConfig{
		Sessions: sessions,
		Tenants:  tenants,
		Seed:     1,
	})
	if err != nil {
		return nil, err
	}
	if res.Hangs != 0 {
		return nil, fmt.Errorf("bench: %d requests hung past %v under chaos", res.Hangs, chaosHangBudget)
	}
	if res.GoroutinesLeaked != 0 {
		return nil, fmt.Errorf("bench: %d goroutines leaked after the chaos swarm", res.GoroutinesLeaked)
	}
	if res.Drain.Dropped != 0 {
		return nil, fmt.Errorf("bench: chaos drain dropped %d admitted requests", res.Drain.Dropped)
	}
	if res.OK == 0 {
		return nil, errors.New("bench: no request survived the chaos — fault rates are supposed to be survivable")
	}
	return &PR10Summary{Scale: scale, Chaos: res}, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR10Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
