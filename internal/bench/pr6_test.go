package bench

import (
	"testing"
	"time"
)

// TestRepeatedTemplateHitRate is the PR-6 regression: a repeated-template
// workload over the parameterized, sharded plan cache must hit above 90%
// (the PR-3 raw-SQL key scored exactly 0 here).
func TestRepeatedTemplateHitRate(t *testing.T) {
	row, err := RunRepeatedTemplate("TPCD_2", 0.1, 1, 6, 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.HitRate <= 0.9 {
		t.Errorf("repeated-template hit rate = %.3f, want > 0.9 (hits=%d misses=%d entries=%d)",
			row.HitRate, row.Hits, row.Misses, row.CacheEntries)
	}
	if got := row.Hits + row.Misses; got != uint64(row.Statements) {
		t.Errorf("cache lookups = %d, want one per statement (%d)", got, row.Statements)
	}
	if row.Evictions != 0 {
		t.Errorf("tiny workload should not evict: %d evictions", row.Evictions)
	}
	if row.Shards <= 1 {
		t.Errorf("capacity-1024 cache should shard, got %d", row.Shards)
	}
	if row.UncachedP99 <= 0 || row.CachedP99 <= 0 || row.CachedP50 <= 0 {
		t.Errorf("latency percentiles missing: %+v", row)
	}
	t.Logf("hit rate %.3f, speedup %.2fx, p99 %v -> %v",
		row.HitRate, row.SpeedupX, row.UncachedP99, row.CachedP99)
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3}
	if p := percentile(lats, 0.5); p != 3 {
		t.Errorf("p50 = %d, want 3", p)
	}
	if p := percentile(lats, 0.99); p != 5 {
		t.Errorf("p99 = %d, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %d, want 0", p)
	}
	if lats[0] != 5 {
		t.Error("percentile must not reorder the caller's sample")
	}
}
