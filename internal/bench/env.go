// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's §8 evaluation (plus the §1 motivating
// experiment and the ablations called out in DESIGN.md). It is shared by
// cmd/experiments and the root bench_test.go.
package bench

import (
	"fmt"

	"autostats/internal/datagen"
	"autostats/internal/executor"
	"autostats/internal/histogram"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
	"autostats/internal/storage"
	"autostats/internal/workload"
)

// Env is one freshly generated database with its statistics manager,
// optimizer session and executor. Experiments that compare two statistics
// policies run each policy in its own Env over identical data (same
// generator seed) so DML side effects cannot leak between arms.
type Env struct {
	DBName string
	DB     *storage.Database
	Mgr    *stats.Manager
	Sess   *optimizer.Session
	Ex     *executor.Executor
}

// NewEnv generates the named paper database (TPCD_0, TPCD_2, TPCD_4,
// TPCD_MIX) at the given scale.
func NewEnv(dbName string, scale float64) (*Env, error) {
	cfg, err := datagen.ConfigByName(dbName)
	if err != nil {
		return nil, err
	}
	cfg.Scale = scale
	db, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	mgr := stats.NewManager(db, histogram.MaxDiff, 0)
	return &Env{
		DBName: dbName,
		DB:     db,
		Mgr:    mgr,
		Sess:   optimizer.NewSession(mgr),
		Ex:     executor.New(db),
	}, nil
}

// CreateIndexedColumnStats builds single-column statistics on every indexed
// column, mirroring the paper's tuned baseline ("besides statistics on
// indexed columns") — index creation auto-creates a statistic in SQL Server.
func (e *Env) CreateIndexedColumnStats() error {
	for _, ix := range e.DB.Schema.Indexes {
		if _, err := e.Mgr.Create(ix.Table, []string{ix.Column}); err != nil {
			return fmt.Errorf("bench: stats on indexed column %s.%s: %w", ix.Table, ix.Column, err)
		}
	}
	return nil
}

// Workload builds the named Rags workload (e.g. "U25-C-100") over this
// environment's database with a deterministic seed.
func (e *Env) Workload(name string, seed int64) (*workload.Workload, error) {
	cfg, err := workload.ConfigByName(name, seed)
	if err != nil {
		return nil, err
	}
	return workload.Generate(e.DB, cfg)
}

// ExecuteQueries optimizes and executes every SELECT in the workload under
// the env's current statistics and returns the total execution cost in work
// units.
func (e *Env) ExecuteQueries(w *workload.Workload) (float64, error) {
	total := 0.0
	for _, q := range w.Queries() {
		plan, err := e.Sess.Optimize(q)
		if err != nil {
			return 0, err
		}
		res, err := e.Ex.Run(plan)
		if err != nil {
			return 0, err
		}
		total += res.Cost
	}
	return total, nil
}

// ExecuteAll runs every statement (queries and DML) and returns the total
// execution cost.
func (e *Env) ExecuteAll(w *workload.Workload) (float64, error) {
	total := 0.0
	for _, stmt := range w.Statements {
		res, err := e.Ex.RunStatement(e.Sess, stmt)
		if err != nil {
			return 0, err
		}
		total += res.Cost
	}
	return total, nil
}

// PctReduction returns (base−new)/base in percent (0 when base is 0).
func PctReduction(base, new float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (base - new) / base
}

// PctIncrease returns (new−base)/base in percent (0 when base is 0).
func PctIncrease(base, new float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (new - base) / base
}
