package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autostats/internal/optimizer"
	"autostats/internal/query"
	"autostats/internal/workload"
)

// RepeatedTemplateRow measures plan-cache effectiveness on a prepared-
// statement-style workload: a small set of statement templates, each
// optimized many times with constants re-sampled from the live data. This is
// the workload shape the PR 3 benchmark showed at a 0% hit rate (the key
// embedded the raw SQL, so every fresh constant missed); with parameterized
// keys the repeats hit, and only constants that cross a selectivity-bucket
// boundary re-optimize.
type RepeatedTemplateRow struct {
	DB                   string
	Templates            int
	InstancesPerTemplate int
	Statements           int
	Parallelism          int
	// UncachedWall / CachedWall are the wall-clock times to optimize the
	// whole instance stream with Parallelism workers, without and with a
	// shared sharded plan cache.
	UncachedWall time.Duration
	CachedWall   time.Duration
	SpeedupX     float64
	// HitRate is Hits / (Hits + Misses) over the cached arm. Misses count
	// one optimization per distinct (template, bucket vector) pair.
	HitRate      float64
	Hits, Misses uint64
	Evictions    uint64
	Shards       int
	CacheEntries int
	// Per-Optimize latency percentiles across all workers of each arm.
	UncachedP50, UncachedP99 time.Duration
	CachedP50, CachedP99     time.Duration
}

// RunRepeatedTemplate builds the named database with statistics on every
// indexed column, draws single-filter templates from the standard generator,
// and optimizes instancesPerTemplate fresh-constant instances of each with
// parallelism workers — once uncached, once sharing one plan cache.
func RunRepeatedTemplate(dbName string, scale float64, seed int64, templates, instancesPerTemplate, parallelism int) (*RepeatedTemplateRow, error) {
	if parallelism <= 0 {
		parallelism = 4
	}
	env, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	// Histograms on the indexed columns make the selectivity buckets real:
	// without any statistics every constant would share the missing bucket
	// and the hit rate would be trivially high.
	if err := env.CreateIndexedColumnStats(); err != nil {
		return nil, err
	}

	tmpls, err := drawTemplates(env, templates, seed)
	if err != nil {
		return nil, err
	}

	// Round-robin the templates so concurrent workers interleave lookups of
	// different templates (the sharded cache's intended load shape).
	inst := workload.NewInstantiator(env.DB, seed+1)
	stmts := make([]*query.Select, 0, len(tmpls)*instancesPerTemplate)
	for i := 0; i < instancesPerTemplate; i++ {
		for _, tm := range tmpls {
			stmts = append(stmts, inst.Instantiate(tm))
		}
	}

	uncachedWall, uncachedLats, err := optimizeAll(env.Sess, stmts, parallelism)
	if err != nil {
		return nil, err
	}

	cache := optimizer.NewPlanCache(1024)
	cachedProto := env.Sess.Clone()
	cachedProto.SetPlanCache(cache)
	cachedWall, cachedLats, err := optimizeAll(cachedProto, stmts, parallelism)
	if err != nil {
		return nil, err
	}

	cs := cache.Stats()
	row := &RepeatedTemplateRow{
		DB:                   dbName,
		Templates:            len(tmpls),
		InstancesPerTemplate: instancesPerTemplate,
		Statements:           len(stmts),
		Parallelism:          parallelism,
		UncachedWall:         uncachedWall,
		CachedWall:           cachedWall,
		HitRate:              cs.HitRate(),
		Hits:                 cs.Hits,
		Misses:               cs.Misses,
		Evictions:            cs.Evictions,
		Shards:               cs.Shards,
		CacheEntries:         cs.Size,
		UncachedP50:          percentile(uncachedLats, 0.50),
		UncachedP99:          percentile(uncachedLats, 0.99),
		CachedP50:            percentile(cachedLats, 0.50),
		CachedP99:            percentile(cachedLats, 0.99),
	}
	if cachedWall > 0 {
		row.SpeedupX = float64(uncachedWall) / float64(cachedWall)
	}
	return row, nil
}

// drawTemplates pulls single-filter SELECT templates from the standard
// generator (UpdatePct 0). Single-filter shapes keep the space of bucket
// vectors per template small, which is exactly the prepared-statement
// scenario the cache is sized for; multi-filter shapes are covered by the
// differential oracle instead.
func drawTemplates(env *Env, want int, seed int64) ([]*query.Select, error) {
	var out []*query.Select
	for batch := 0; batch < 5 && len(out) < want; batch++ {
		w, err := workload.Generate(env.DB, workload.Config{
			Count:      want * 10,
			UpdatePct:  0,
			Complexity: workload.Simple,
			Seed:       seed + int64(batch)*1000,
		})
		if err != nil {
			return nil, err
		}
		for _, q := range w.Queries() {
			if len(q.Filters) == 1 {
				out = append(out, q)
				if len(out) == want {
					break
				}
			}
		}
	}
	if len(out) < want {
		return nil, fmt.Errorf("bench: only %d of %d single-filter templates found", len(out), want)
	}
	return out, nil
}

// optimizeAll drives the statements through parallelism session clones and
// returns the wall-clock plus every individual Optimize latency.
func optimizeAll(proto *optimizer.Session, stmts []*query.Select, parallelism int) (time.Duration, []time.Duration, error) {
	var next int64
	perWorker := make([][]time.Duration, parallelism)
	errs := make([]error, parallelism)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := proto.Clone()
			lats := make([]time.Duration, 0, len(stmts)/parallelism+1)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(stmts) {
					break
				}
				t0 := time.Now()
				if _, err := sess.Optimize(stmts[i]); err != nil {
					errs[w] = err
					break
				}
				lats = append(lats, time.Since(t0))
			}
			perWorker[w] = lats
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	var all []time.Duration
	for _, l := range perWorker {
		all = append(all, l...)
	}
	return wall, all, nil
}

// percentile returns the q-th latency quantile (nearest-rank on the sorted
// sample). Sorts a copy; the empty sample yields 0.
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// PR6Summary is the machine-readable benchmark bundle for the parameterized
// plan-cache PR: the repeated-template hit-rate/speedup/latency row, the
// standard serial-vs-parallel tuning row over the same sharded cache, and
// the headline hit rate (the number PR 3 reported as 0).
// Serialized to BENCH_PR6.json by cmd/experiments -benchjson6.
type PR6Summary struct {
	Scale            float64
	Workload         string
	RepeatedTemplate *RepeatedTemplateRow
	Parallel         *ParallelRow
	PlanCacheHitRate float64
}

// RunPR6 gathers the PR-6 benchmark bundle. parallelism <= 0 uses 4.
func RunPR6(wlName string, scale float64, seed int64, parallelism int) (*PR6Summary, error) {
	rt, err := RunRepeatedTemplate("TPCD_2", scale, seed, 8, 250, parallelism)
	if err != nil {
		return nil, err
	}
	par, err := Parallel("TPCD_2", wlName, scale, seed, parallelism)
	if err != nil {
		return nil, err
	}
	return &PR6Summary{
		Scale:            scale,
		Workload:         wlName,
		RepeatedTemplate: rt,
		Parallel:         par,
		PlanCacheHitRate: rt.HitRate,
	}, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR6Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
