package bench

import "testing"

// TestFeedbackDemoEndToEnd is the PR-3 acceptance test: a deliberately
// stale statistic produces a q-error above the maintenance threshold, the
// feedback path refreshes it while the row-mod counter stays silent, and the
// post-refresh q-error collapses.
func TestFeedbackDemoEndToEnd(t *testing.T) {
	row, err := FeedbackDemo(1.0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.ModifiedPct <= 0 || row.ModifiedPct >= 20 {
		t.Fatalf("skew shift rewrote %.1f%% of rows; demo needs 0%% < pct < 20%% to keep the counter silent", row.ModifiedPct)
	}
	if row.QErrBefore <= 2 {
		t.Errorf("stale-stat q-error = %.2f, want > maintenance threshold 2", row.QErrBefore)
	}
	if row.CounterRefreshes != 0 {
		t.Errorf("row-mod counter fired (%d tables); the demo must trigger on feedback alone", row.CounterRefreshes)
	}
	if row.FeedbackRefreshes < 1 {
		t.Errorf("feedback refreshes = %d, want >= 1", row.FeedbackRefreshes)
	}
	if row.QErrAfter >= row.QErrBefore/2 {
		t.Errorf("post-refresh q-error = %.2f, want well below the stale %.2f", row.QErrAfter, row.QErrBefore)
	}
	if !row.PlanChanged {
		t.Error("expected the refreshed histogram to change the join plan")
	}
}

// TestFeedbackOverheadShape: capture must run (observations flow) and its
// wall-clock overhead must stay within the PR's 5% budget, with slack for
// timer noise at test scale.
func TestFeedbackOverheadShape(t *testing.T) {
	// Wall-clock ratios are noisy when other test packages hog the
	// machine, so a miss is re-measured a couple of times before it
	// counts: scheduling noise passes on retry, a real regression fails
	// all three runs.
	const attempts = 3
	var row *FeedbackOverheadRow
	for i := 0; i < attempts; i++ {
		var err error
		row, err = FeedbackOverhead(0.5, 30)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%+v", row)
		if row.Observations == 0 {
			t.Fatal("enabled arm recorded no observations")
		}
		if row.OverheadPct <= 15 {
			return
		}
	}
	t.Errorf("feedback capture overhead = %.1f%% on %d consecutive runs, want small (budget 5%%, test tolerance 15%%)", row.OverheadPct, attempts)
}
