package bench

import (
	"runtime"
	"time"

	"autostats/internal/core"
	"autostats/internal/optimizer"
	"autostats/internal/stats"
)

// ParallelRow compares serial and parallel MNSA workload tuning on identical
// fresh databases.
type ParallelRow struct {
	DB          string
	Parallelism int
	Queries     int
	SerialWall  time.Duration
	ParWall     time.Duration
	SpeedupX    float64
	// SerialStats and ParStats count the statistics each arm created;
	// OverlapPct is |serial ∩ parallel| / |serial ∪ parallel| in percent.
	// At parallelism 1 overlap is 100 % by construction; at higher
	// parallelism the sets may legitimately differ (creation order changes
	// what later queries still find missing).
	SerialStats int
	ParStats    int
	OverlapPct  float64
	CacheHits   uint64
	CacheMiss   uint64
	// WorkerUtilPct is the parallel arm's pool utilization: the sum of
	// per-worker busy time (the tune.worker.busy timing) over wall-clock ×
	// workers, in percent. Values well below 100 indicate workers starved on
	// the shared manager lock or on queue skew.
	WorkerUtilPct float64
}

// Parallel tunes the same workload serially and with a worker pool, on two
// identically seeded databases, and reports wall-clock plus a created-set
// equality check. parallelism <= 0 uses GOMAXPROCS.
func Parallel(dbName, wlName string, scale float64, seed int64, parallelism int) (*ParallelRow, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	cfg := core.DefaultConfig()

	serialEnv, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	w, err := serialEnv.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	queries := w.Queries()

	start := time.Now()
	serial, err := core.RunMNSAWorkload(serialEnv.Sess, queries, cfg)
	if err != nil {
		return nil, err
	}
	serialWall := time.Since(start)

	parEnv, err := NewEnv(dbName, scale)
	if err != nil {
		return nil, err
	}
	cache := optimizer.NewPlanCache(1024)
	parEnv.Sess.SetPlanCache(cache)
	pw, err := parEnv.Workload(wlName, seed)
	if err != nil {
		return nil, err
	}
	// Utilization comes from the busy-timing delta around this run: managers
	// default to the shared obs.Default registry, so the counter may already
	// hold observations from earlier rows.
	busyT := parEnv.Sess.Obs().Timing("tune.worker.busy")
	busyBefore := busyT.Snapshot().Sum
	start = time.Now()
	par, err := core.RunMNSAWorkloadParallel(parEnv.Sess, pw.Queries(), cfg, parallelism)
	if err != nil {
		return nil, err
	}
	parWall := time.Since(start)
	busyDelta := busyT.Snapshot().Sum - busyBefore

	row := &ParallelRow{
		DB:          dbName,
		Parallelism: parallelism,
		Queries:     len(queries),
		SerialWall:  serialWall,
		ParWall:     parWall,
		SerialStats: len(serial.Created),
		ParStats:    len(par.Created),
		OverlapPct:  overlapPct(serial.Created, par.Created),
	}
	if parWall > 0 {
		row.SpeedupX = float64(serialWall) / float64(parWall)
		row.WorkerUtilPct = 100 * float64(busyDelta) / (float64(parWall) * float64(parallelism))
	}
	cs := cache.Stats()
	row.CacheHits, row.CacheMiss = cs.Hits, cs.Misses
	return row, nil
}

func overlapPct(a, b []stats.ID) float64 {
	inA := make(map[stats.ID]bool, len(a))
	for _, id := range a {
		inA[id] = true
	}
	union := make(map[stats.ID]bool, len(a)+len(b))
	both := 0
	for _, id := range a {
		union[id] = true
	}
	for _, id := range b {
		if inA[id] {
			both++
		}
		union[id] = true
	}
	if len(union) == 0 {
		return 100
	}
	return 100 * float64(both) / float64(len(union))
}
