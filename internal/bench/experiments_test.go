package bench

import (
	"testing"

	"autostats/internal/core"
)

// Experiment shape tests: assert the direction and rough magnitude of every
// §8 result on a reduced scale, leaving exact percentages to EXPERIMENTS.md.

func TestIntroShape(t *testing.T) {
	res, err := Intro("TPCD_2", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Rows); n != 17 {
		t.Fatalf("expected 17 TPCD-ORIG queries, got %d", n)
	}
	t.Logf("plans changed: %d/17, improved: %d, worse: %d", res.Changed, res.Improved, res.Worse)
	// The paper saw 15/17 on SQL Server's much richer plan space; our
	// single-block engine's ceiling is lower (queries whose only plan is a
	// scan+aggregate cannot change), but the direction must hold: a large
	// share of plans change once statistics exist, and changes improve.
	if res.Changed < 8 {
		t.Errorf("expected many plans to change once statistics exist (paper: 15/17); got %d", res.Changed)
	}
	if res.Improved*2 < res.Changed {
		t.Errorf("expected most changed plans to improve execution cost; improved %d of %d", res.Improved, res.Changed)
	}
	if res.Worse > res.Changed/3 {
		t.Errorf("too many changed plans regressed: %d of %d", res.Worse, res.Changed)
	}
}

func TestFigure3Shape(t *testing.T) {
	row, err := Figure3("TPCD_2", "U0-C-40", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.CandidateCount >= row.ExhaustiveCount {
		t.Errorf("candidate algorithm should propose fewer statistics: %d vs %d", row.CandidateCount, row.ExhaustiveCount)
	}
	if row.CreationReductionPct < 20 {
		t.Errorf("expected substantial creation-cost reduction (paper: 50-80%%), got %.1f%%", row.CreationReductionPct)
	}
	if row.ExecIncreasePct > 10 {
		t.Errorf("execution cost increase too high: %.1f%% (paper: <=3%%)", row.ExecIncreasePct)
	}
}

func TestFigure4Shape(t *testing.T) {
	row, err := Figure4("TPCD_2", "U0-C-40", 0.5, 1, core.CandidateStats)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.MNSACount >= row.AllCount {
		t.Errorf("MNSA should build fewer statistics: %d vs %d", row.MNSACount, row.AllCount)
	}
	if row.CreationReductionPct <= 0 {
		t.Errorf("expected positive creation-cost reduction (paper: 30-45%%), got %.1f%%", row.CreationReductionPct)
	}
	if row.ExecIncreasePct > 10 {
		t.Errorf("execution cost increase too high: %.1f%% (paper: <=2%%)", row.ExecIncreasePct)
	}
}

func TestFigure4SingleColumnShape(t *testing.T) {
	row, err := Figure4("TPCD_2", "U0-C-40", 0.5, 1, core.SingleColumnCandidates)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.CreationReductionPct <= 0 {
		t.Errorf("expected positive reduction (paper: >30%% in all cases), got %.1f%%", row.CreationReductionPct)
	}
}

func TestTable1Shape(t *testing.T) {
	row, err := Table1("TPCD_2", "U25-C-40", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", row)
	if row.DropListed == 0 {
		t.Errorf("MNSA/D should drop-list some statistics")
	}
	if row.UpdateReductionPct <= 0 {
		t.Errorf("expected positive update-cost reduction (paper: ~30%%), got %.1f%%", row.UpdateReductionPct)
	}
	if row.ExecIncreasePct > 15 {
		t.Errorf("re-run execution cost increase too high: %.1f%% (paper: <=6%%)", row.ExecIncreasePct)
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const wl = "U0-C-30"

	rows, err := AblationThreshold("TPCD_2", wl, 0.5, 1, []float64{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].StatsCreated < rows[1].StatsCreated {
		t.Errorf("threshold sweep: smaller t must never build fewer statistics: %+v", rows)
	}

	rows, err = AblationNextStat("TPCD_2", wl, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].CreationUnits > rows[1].CreationUnits {
		t.Errorf("heuristic (%v units) should beat random (%v units)", rows[0].CreationUnits, rows[1].CreationUnits)
	}

	rows, err = AblationCostWeighted("TPCD_2", wl, 0.5, 1, []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].CreationUnits >= rows[0].CreationUnits {
		t.Errorf("coverage 0.5 should cost less to tune than full: %+v", rows)
	}

	rows, err = AblationSampling("TPCD_2", wl, 0.5, 1, []float64{1.0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].CreationUnits >= rows[0].CreationUnits/2 {
		t.Errorf("10%% sampling should slash creation units: full=%v sampled=%v", rows[0].CreationUnits, rows[1].CreationUnits)
	}

	rows, err = AblationHistogramKind("TPCD_2", wl, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("histogram-kind ablation rows: %d", len(rows))
	}
	t.Logf("maxdiff exec=%v equidepth exec=%v", rows[0].ExecCost, rows[1].ExecCost)

	slowKept, slowCalls, fastKept, fastCalls, err := AblationShrinkFast("TPCD_2", wl, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slowKept == 0 || fastKept == 0 {
		t.Errorf("shrink ablation degenerate: slow=%d fast=%d", slowKept, fastKept)
	}
	t.Logf("shrink slow: kept=%d calls=%d; fast: kept=%d calls=%d", slowKept, slowCalls, fastKept, fastCalls)
}
