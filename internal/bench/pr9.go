package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"time"

	"autostats/internal/catalog"
	"autostats/internal/histogram"
	"autostats/internal/obs"
	"autostats/internal/stats"
	"autostats/internal/storage"
)

// PR-9 bundle: streaming (block-at-a-time) statistic construction. The
// headline claim is flat peak build memory — growing the table 10x must not
// grow the build's memory high-water mark — plus bitwise identity of every
// streamed build against the one-shot reference, across block sizes and
// forced spilling.
//
// The benchmark tables have BOUNDED distinct counts (values are drawn
// modulo fixed ranges): a histogram partial retains one entry per distinct
// leading value and prefix, so "flat memory" is only a meaningful claim
// when the summary itself does not grow with row count — which matches the
// production shape (domains grow much slower than row counts). The peak is
// the manager's deterministic byte estimate (stats.build.mem_peak_bytes):
// builder plus retained partials, the quantity the budget bounds.

// streamBenchConfig is the streaming configuration both arms run with.
var streamBenchConfig = stats.StreamConfig{
	Enabled:        true,
	BlockSize:      256,
	PartitionRows:  2048,
	MemBudgetBytes: 128 << 10,
}

// StreamArm is one table-size arm of the streaming build benchmark.
type StreamArm struct {
	Rows       int64
	Blocks     int64
	Spills     int64
	SpillBytes int64
	// PeakBytes is the build's peak estimated memory (builder + retained
	// partials), from the stats.build.mem_peak_bytes gauge.
	PeakBytes int64
	Wall      time.Duration
	// Mismatch is true when the streamed histogram differed from the
	// single-pass reference build (must stay false).
	Mismatch bool
}

// StreamSweep summarizes the block-size × spill identity sweep.
type StreamSweep struct {
	Builds     int
	Mismatches int
}

// PR9Summary is the machine-readable bundle for the streaming-build PR,
// serialized to BENCH_PR9.json by cmd/experiments -benchjson9. Gates:
// PeakRatio <= MaxFlatPeakRatio while LargeFactor grows the table 10x,
// Large.Spills > 0 (the spill path actually ran), zero mismatches anywhere.
type PR9Summary struct {
	Scale         float64
	BlockSize     int
	PartitionRows int
	MemBudget     int64
	LargeFactor   int
	Small         StreamArm
	Large         StreamArm
	// PeakRatio is Large.PeakBytes / Small.PeakBytes — the flat-memory gate.
	PeakRatio float64
	Sweep     StreamSweep
}

// MaxFlatPeakRatio is the acceptance bound on PeakRatio: a 10x table may
// move the bounded peak by partition-boundary noise, not by growth.
const MaxFlatPeakRatio = 1.5

// streamBenchTable builds a synthetic table with bounded distinct counts:
// rows grow, domains do not.
func streamBenchTable(rows int) (*storage.Database, error) {
	schema := catalog.NewSchema()
	if err := schema.AddTable(catalog.NewTable("events",
		catalog.Column{Name: "kind", Type: catalog.Int},
		catalog.Column{Name: "region", Type: catalog.String},
	)); err != nil {
		return nil, err
	}
	db, err := storage.NewDatabase("streambench", schema)
	if err != nil {
		return nil, err
	}
	td, err := db.Table("events")
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		kind := catalog.NewInt(int64((i * 7) % 211))
		if i%29 == 0 {
			kind = catalog.NewNull(catalog.Int)
		}
		if err := td.Insert(storage.Row{
			kind,
			catalog.NewString(fmt.Sprintf("r%d", (i*3)%17)),
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// runStreamArm builds events(kind,region) once with streaming on and returns
// the arm's counters plus the identity check against a one-shot build of the
// same table.
func runStreamArm(rows int) (StreamArm, error) {
	arm := StreamArm{Rows: int64(rows)}
	db, err := streamBenchTable(rows)
	if err != nil {
		return arm, err
	}
	cols := []string{"kind", "region"}
	ref := stats.NewManager(db, histogram.MaxDiff, 0)
	ref.SetObsRegistry(obs.New())
	want, err := ref.Create("events", cols)
	if err != nil {
		return arm, err
	}
	m := stats.NewManager(db, histogram.MaxDiff, 0)
	reg := obs.New()
	m.SetObsRegistry(reg)
	if err := m.SetStreamingBuild(streamBenchConfig); err != nil {
		return arm, err
	}
	start := time.Now()
	got, err := m.Create("events", cols)
	if err != nil {
		return arm, err
	}
	arm.Wall = time.Since(start)
	arm.Blocks = reg.Counter("stats.build.blocks").Value()
	arm.Spills = reg.Counter("stats.build.spills").Value()
	arm.SpillBytes = reg.Counter("stats.build.spill_bytes").Value()
	arm.PeakBytes = reg.Gauge("stats.build.mem_peak_bytes").Value()
	arm.Mismatch = !reflect.DeepEqual(got.Data, want.Data)
	return arm, nil
}

// runStreamSweep re-checks identity across block sizes with spilling forced
// on and off — the bench-side mirror of the oracle sweep, so the published
// bundle carries its own zero-mismatch evidence.
func runStreamSweep(rows int) (StreamSweep, error) {
	sweep := StreamSweep{}
	db, err := streamBenchTable(rows)
	if err != nil {
		return sweep, err
	}
	cols := []string{"kind", "region"}
	ref := stats.NewManager(db, histogram.MaxDiff, 0)
	ref.SetObsRegistry(obs.New())
	want, err := ref.Create("events", cols)
	if err != nil {
		return sweep, err
	}
	for _, bs := range []int{1, 7, 64, 4096} {
		for _, budget := range []int64{0, 1} {
			m := stats.NewManager(db, histogram.MaxDiff, 0)
			m.SetObsRegistry(obs.New())
			if err := m.SetStreamingBuild(stats.StreamConfig{
				Enabled:        true,
				BlockSize:      bs,
				PartitionRows:  512,
				MemBudgetBytes: budget,
			}); err != nil {
				return sweep, err
			}
			got, err := m.Create("events", cols)
			if err != nil {
				return sweep, err
			}
			sweep.Builds++
			if !reflect.DeepEqual(got.Data, want.Data) {
				sweep.Mismatches++
			}
		}
	}
	return sweep, nil
}

// RunPR9 gathers the streaming-build bundle: a small arm, a LargeFactor-x
// arm, the peak-memory ratio between them, and the identity sweep.
func RunPR9(scale float64) (*PR9Summary, error) {
	if scale <= 0 {
		scale = 0.5
	}
	smallRows := int(20_000 * scale)
	if smallRows < 2_000 {
		smallRows = 2_000
	}
	const factor = 10
	small, err := runStreamArm(smallRows)
	if err != nil {
		return nil, err
	}
	large, err := runStreamArm(smallRows * factor)
	if err != nil {
		return nil, err
	}
	sweep, err := runStreamSweep(smallRows / 4)
	if err != nil {
		return nil, err
	}
	s := &PR9Summary{
		Scale:         scale,
		BlockSize:     streamBenchConfig.BlockSize,
		PartitionRows: streamBenchConfig.PartitionRows,
		MemBudget:     streamBenchConfig.MemBudgetBytes,
		LargeFactor:   factor,
		Small:         small,
		Large:         large,
		Sweep:         sweep,
	}
	if small.PeakBytes > 0 {
		s.PeakRatio = float64(large.PeakBytes) / float64(small.PeakBytes)
	}
	return s, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR9Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
