package bench

import "testing"

// TestRunPR8Smoke runs the full bundle at toy size — the shape and gates,
// not the 1000-session scale (cmd/experiments -benchjson8 runs that).
func TestRunPR8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm benchmark in -short mode")
	}
	sum, err := RunPR8(0.02, 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Swarm.Failures != 0 {
		t.Fatalf("swarm failures: %d (%s)", sum.Swarm.Failures, sum.Swarm.FirstError)
	}
	if sum.Swarm.Requests < int64(24*4) {
		t.Fatalf("swarm issued %d requests, want >= %d", sum.Swarm.Requests, 24*4)
	}
	if sum.Swarm.Throughput <= 0 || sum.Swarm.P99 <= 0 {
		t.Fatalf("throughput/latency empty: %+v", sum.Swarm)
	}
	if sum.PlanCache.Hits == 0 {
		t.Fatalf("repeated templates produced no multi-tenant plan-cache hits: %+v", sum.PlanCache)
	}
	if sum.Overload.Rejected == 0 || !sum.Overload.AllErrOverloaded {
		t.Fatalf("overload probe: %+v", sum.Overload)
	}
	if sum.Drain.Dropped != 0 || sum.Drain.ResponsesReceived != sum.Drain.InFlight {
		t.Fatalf("drain probe: %+v", sum.Drain)
	}
}
