package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autostats"
	"autostats/client"
	"autostats/internal/protocol"
	"autostats/internal/server"
)

// SwarmConfig shapes a client swarm against one server address.
type SwarmConfig struct {
	// Sessions is the number of concurrent client sessions; each session
	// opens its own connection and issues requests serially.
	Sessions int
	// Tenants spreads the sessions round-robin across this many tenants
	// ("t0".."tN-1").
	Tenants int
	// RequestsPerSession is how many exec requests each session issues.
	RequestsPerSession int
	// TuneEvery makes every TuneEvery-th session run one single-query tune
	// after its execs (0 disables tuning).
	TuneEvery int
}

// SwarmResult aggregates one swarm run.
type SwarmResult struct {
	Sessions   int
	Tenants    int
	Requests   int64
	Failures   int64
	Wall       time.Duration
	Throughput float64 // requests per second, swarm-wide
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
	// FirstError samples one failure for the report (empty when Failures==0).
	FirstError string
}

// swarmTemplates are the repeated exec templates; repeating a small set per
// tenant is what drives the multi-tenant plan-cache hit rate.
var swarmTemplates = []string{
	"SELECT * FROM orders WHERE o_orderkey > 10",
	"SELECT * FROM lineitem WHERE l_quantity > 45",
	"SELECT * FROM orders WHERE o_totalprice > 1000",
	"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45",
}

// Swarm runs cfg.Sessions concurrent client sessions against addr and
// aggregates latency and failure counts. It works against an in-process
// server or an external daemon (cmd/experiments -swarm-addr).
func Swarm(ctx context.Context, addr string, cfg SwarmConfig) (*SwarmResult, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 1
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.RequestsPerSession <= 0 {
		cfg.RequestsPerSession = 1
	}
	var (
		wg        sync.WaitGroup
		requests  atomic.Int64
		failures  atomic.Int64
		firstErr  atomic.Pointer[string]
		latMu     sync.Mutex
		latencies []time.Duration
	)
	recordErr := func(err error) {
		failures.Add(1)
		msg := err.Error()
		firstErr.CompareAndSwap(nil, &msg)
	}
	start := time.Now()
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%cfg.Tenants)
			c, err := client.Dial(addr, client.Options{Tenant: tenant})
			if err != nil {
				recordErr(fmt.Errorf("session %d dial: %w", i, err))
				return
			}
			defer c.Close()
			local := make([]time.Duration, 0, cfg.RequestsPerSession)
			for j := 0; j < cfg.RequestsPerSession; j++ {
				sql := swarmTemplates[(i+j)%len(swarmTemplates)]
				t0 := time.Now()
				_, err := c.Exec(ctx, sql)
				d := time.Since(t0)
				requests.Add(1)
				if err != nil {
					recordErr(fmt.Errorf("session %d exec: %w", i, err))
					return
				}
				local = append(local, d)
			}
			if cfg.TuneEvery > 0 && i%cfg.TuneEvery == 0 {
				t0 := time.Now()
				_, err := c.Tune(ctx, []string{swarmTemplates[3]}, nil)
				d := time.Since(t0)
				requests.Add(1)
				if err != nil {
					recordErr(fmt.Errorf("session %d tune: %w", i, err))
					return
				}
				local = append(local, d)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	res := &SwarmResult{
		Sessions: cfg.Sessions,
		Tenants:  cfg.Tenants,
		Requests: requests.Load(),
		Failures: failures.Load(),
		Wall:     wall,
	}
	if msg := firstErr.Load(); msg != nil {
		res.FirstError = *msg
	}
	if wall > 0 {
		res.Throughput = float64(res.Requests) / wall.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		res.P50 = latencies[len(latencies)/2]
		res.P99 = latencies[len(latencies)*99/100]
		res.Max = latencies[len(latencies)-1]
	}
	return res, nil
}

// OverloadProbe is the admission-control gate: against a server with one
// worker wedged and a one-slot queue, a burst of requests must fast-fail
// with ErrOverloaded rather than queue unboundedly.
type OverloadProbe struct {
	Burst            int
	Rejected         int
	CompletedLater   int
	AllErrOverloaded bool
	// WedgedResolved is the two wedged requests completing once the wedge
	// opens — proof rejection didn't leak their slots.
	WedgedResolved int
}

// DrainProbe is the graceful-shutdown gate: with requests wedged in-flight,
// Shutdown must complete them all — Dropped stays 0 and every waiter gets
// its response.
type DrainProbe struct {
	InFlight  int
	Admitted  int64
	Completed int64
	Dropped   int64
	Forced    bool
	// ResponsesReceived counts client-side responses for the wedged
	// requests; it must equal InFlight.
	ResponsesReceived int
}

// PlanCacheSummary is the aggregated multi-tenant plan-cache outcome of the
// swarm phase.
type PlanCacheSummary struct {
	Hits    uint64
	Misses  uint64
	HitRate float64
	Size    int
	Shards  int
}

// PR8Summary is the machine-readable bundle for the stats-as-a-service PR,
// serialized to BENCH_PR8.json by cmd/experiments -benchjson8. The gates:
// Swarm.Failures == 0 at >= 1000 sessions over >= 8 tenants,
// Overload.Rejected > 0 with AllErrOverloaded, Drain.Dropped == 0.
type PR8Summary struct {
	Scale     float64
	Swarm     *SwarmResult
	PlanCache PlanCacheSummary
	Overload  *OverloadProbe
	Drain     *DrainProbe
}

// tenantFactory builds the per-tenant system used by the benchmark server.
func tenantFactory(scale float64) func(string) (*autostats.System, error) {
	return func(string) (*autostats.System, error) {
		return autostats.GenerateTPCD(autostats.TPCDOptions{Scale: scale, Skew: 2})
	}
}

// runSwarmPhase starts an in-process server and drives the full swarm.
func runSwarmPhase(scale float64, cfg SwarmConfig) (*SwarmResult, PlanCacheSummary, error) {
	srv, err := server.New(server.Config{
		Addr: "127.0.0.1:0",
		// The throughput phase must not shed load: the queue is sized to the
		// swarm so admission control never rejects (overload behavior has its
		// own probe below).
		Workers:    8,
		QueueDepth: 2 * cfg.Sessions,
		MaxTenants: cfg.Tenants + 1,
		NewTenant:  tenantFactory(scale),
	})
	if err != nil {
		return nil, PlanCacheSummary{}, err
	}
	if err := srv.Start(); err != nil {
		return nil, PlanCacheSummary{}, err
	}
	res, err := Swarm(context.Background(), srv.Addr().String(), cfg)
	var pc PlanCacheSummary
	if err == nil {
		st := srv.PlanCacheStats()
		pc = PlanCacheSummary{
			Hits: st.Hits, Misses: st.Misses, HitRate: st.HitRate(),
			Size: st.Size, Shards: st.Shards,
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep := srv.Shutdown(ctx)
	if err == nil && rep.Dropped != 0 {
		err = fmt.Errorf("bench: swarm shutdown dropped %d requests", rep.Dropped)
	}
	return res, pc, err
}

// runOverloadProbe wedges a 1-worker, 1-slot server and bursts requests at
// it; the burst must fast-fail with ErrOverloaded.
func runOverloadProbe(burst int) (*OverloadProbe, error) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv, err := server.New(server.Config{
		Addr: "127.0.0.1:0", Workers: 1, QueueDepth: 1,
		NewTenant: func(string) (*autostats.System, error) {
			started <- struct{}{}
			<-release
			return nil, errors.New("bench: wedged tenant")
		},
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c, err := client.Dial(srv.Addr().String(), client.Options{Tenant: "wedge"})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	probe := &OverloadProbe{Burst: burst, AllErrOverloaded: true}
	ctx := context.Background()
	results := make(chan error, burst+2)
	var wg sync.WaitGroup
	stat := func() {
		defer wg.Done()
		_, err := c.Stats(ctx)
		results <- err
	}
	// Wedge the lone worker, then let one request take the queue slot.
	wg.Add(1)
	go stat()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		return nil, errors.New("bench: overload probe never wedged")
	}
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go stat()
	}
	// The burst resolves as fast-fails except the one queued request; wait
	// for those rejections before opening the wedge.
	deadline := time.Now().Add(60 * time.Second)
	for len(results) < burst-1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)
	for err := range results {
		switch {
		case err == nil:
			probe.CompletedLater++
		case errors.Is(err, protocol.ErrOverloaded):
			probe.Rejected++
		case strings.Contains(err.Error(), "wedged tenant"):
			// The wedged requests resolve with the factory's synthetic error
			// — a served response, not a rejection.
			probe.WedgedResolved++
		default:
			// Anything else (transport failure, wrong code) breaks the
			// "rejections surface as ErrOverloaded" gate.
			probe.AllErrOverloaded = false
		}
	}
	if probe.Rejected == 0 {
		return probe, errors.New("bench: overload probe saw no ErrOverloaded rejections")
	}
	return probe, nil
}

// runDrainProbe wedges requests in flight and shuts the server down
// concurrently; the drain must complete every admitted request.
func runDrainProbe(inFlight int) (*DrainProbe, error) {
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	srv, err := server.New(server.Config{
		Addr: "127.0.0.1:0", Workers: inFlight, QueueDepth: inFlight,
		NewTenant: func(string) (*autostats.System, error) {
			started <- struct{}{}
			<-release
			return nil, errors.New("bench: wedged tenant")
		},
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	responded := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		c, err := client.Dial(srv.Addr().String(), client.Options{Tenant: fmt.Sprintf("d%d", i)})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			_, err := c.Stats(ctx)
			responded <- err
		}(c)
	}
	// All inFlight requests must be wedged inside workers before the drain
	// starts, so the drain genuinely has work outstanding.
	for i := 0; i < inFlight; i++ {
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			return nil, errors.New("bench: drain probe never wedged")
		}
	}

	drainDone := make(chan server.DrainReport, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(sctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown reach its in-flight wait
	close(release)
	wg.Wait()
	close(responded)
	rep := <-drainDone

	probe := &DrainProbe{
		InFlight: inFlight,
		Admitted: rep.Admitted, Completed: rep.Completed,
		Dropped: rep.Dropped, Forced: rep.Forced,
	}
	for err := range responded {
		// Each wedged request resolves with the factory's synthetic error —
		// a served RESPONSE that crossed the draining connection. A transport
		// failure (connection torn down before the response) would surface
		// differently and not count.
		if err != nil && strings.Contains(err.Error(), "wedged tenant") {
			probe.ResponsesReceived++
		}
	}
	if probe.Dropped != 0 {
		return probe, fmt.Errorf("bench: drain dropped %d admitted requests", probe.Dropped)
	}
	if probe.ResponsesReceived != inFlight {
		return probe, fmt.Errorf("bench: only %d/%d wedged requests got responses through the drain",
			probe.ResponsesReceived, inFlight)
	}
	return probe, nil
}

// RunPR8 gathers the stats-as-a-service benchmark bundle: a client swarm
// (sessions concurrent sessions over tenants tenants, pipelined over real
// TCP), the multi-tenant plan-cache outcome, the overload fast-fail probe,
// and the graceful-drain probe.
func RunPR8(scale float64, sessions, tenants int) (*PR8Summary, error) {
	if sessions <= 0 {
		sessions = 1000
	}
	if tenants <= 0 {
		tenants = 8
	}
	swarm, pc, err := runSwarmPhase(scale, SwarmConfig{
		Sessions:           sessions,
		Tenants:            tenants,
		RequestsPerSession: 4,
		TuneEvery:          100,
	})
	if err != nil {
		return nil, err
	}
	if swarm.Failures > 0 {
		return nil, fmt.Errorf("bench: swarm had %d failures (first: %s)", swarm.Failures, swarm.FirstError)
	}
	overload, err := runOverloadProbe(32)
	if err != nil {
		return nil, err
	}
	drain, err := runDrainProbe(8)
	if err != nil {
		return nil, err
	}
	return &PR8Summary{
		Scale:     scale,
		Swarm:     swarm,
		PlanCache: pc,
		Overload:  overload,
		Drain:     drain,
	}, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR8Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
