package bench

import (
	"encoding/json"
	"io"
)

// PR3Summary is the machine-readable benchmark bundle for the execution-
// feedback PR: serial-vs-parallel tuning, plan-cache effectiveness, the
// feedback loop-closing demo, and the capture-overhead measurement.
// Serialized to BENCH_PR3.json by cmd/experiments -benchjson.
type PR3Summary struct {
	Scale            float64
	Workload         string
	Parallel         *ParallelRow
	PlanCacheHitRate float64
	FeedbackDemo     *FeedbackRow
	FeedbackOverhead *FeedbackOverheadRow
}

// RunPR3 gathers the PR-3 benchmark bundle. parallelism <= 0 uses
// GOMAXPROCS; overheadIters <= 0 uses the FeedbackOverhead default.
func RunPR3(wlName string, scale float64, seed int64, parallelism, overheadIters int) (*PR3Summary, error) {
	par, err := Parallel("TPCD_2", wlName, scale, seed, parallelism)
	if err != nil {
		return nil, err
	}
	demo, err := FeedbackDemo(scale)
	if err != nil {
		return nil, err
	}
	over, err := FeedbackOverhead(scale, overheadIters)
	if err != nil {
		return nil, err
	}
	s := &PR3Summary{
		Scale:            scale,
		Workload:         wlName,
		Parallel:         par,
		FeedbackDemo:     demo,
		FeedbackOverhead: over,
	}
	if total := par.CacheHits + par.CacheMiss; total > 0 {
		s.PlanCacheHitRate = float64(par.CacheHits) / float64(total)
	}
	return s, nil
}

// WriteJSON renders the summary as indented JSON.
func (s *PR3Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
