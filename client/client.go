// Package client is the Go client for the stats-as-a-service daemon
// (cmd/autostatsd): one TCP connection speaking the length-prefixed JSON
// protocol of internal/protocol, safe for concurrent use.
//
// Calls are pipelined: any number of goroutines may have requests
// outstanding on the one connection; a background reader goroutine pairs
// responses to waiters by request ID, so a slow tune does not block a fast
// exec issued after it. When the connection dies (server restart, network
// fault), every waiter fails promptly with the transport error, and the
// next call redials with the deterministic capped-exponential backoff of
// internal/resilience before giving up.
//
// Server backpressure surfaces as errors the caller can classify:
// errors.Is(err, protocol.ErrOverloaded) for admission-control fast-fails
// and errors.Is(err, protocol.ErrDraining) for a server shutting down.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"autostats/internal/protocol"
	"autostats/internal/resilience"
)

// ErrClosed reports a call on a client after Close.
var ErrClosed = errors.New("client: closed")

// ErrConnLost reports that the connection died while the request was in
// flight. The server may or may not have executed it — callers decide
// whether to retry based on the operation's idempotence. The client itself
// only ever auto-retries read-only calls (Explain, Stats, Metrics); Exec,
// Tune, and Maintain are never silently replayed.
var ErrConnLost = errors.New("client: connection lost with request in flight")

// Options configures Dial. The zero value works against a default server.
type Options struct {
	// Tenant is announced in the hello handshake and becomes the default
	// tenant for every call. Calls cannot override it; use one client per
	// tenant (they are cheap — one goroutine and one socket each).
	Tenant string
	// DialTimeout bounds each TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// HelloTimeout bounds the synchronous hello handshake that follows the
	// TCP connect (default: DialTimeout). It is what keeps Dial from hanging
	// against a listener that accepts connections but never reads — a wedged
	// or half-dead server fails Dial within the timeout instead of blocking
	// the caller indefinitely.
	HelloTimeout time.Duration
	// RequestTimeout, when > 0, bounds every call whose context carries no
	// deadline of its own. A caller-supplied deadline always wins.
	RequestTimeout time.Duration
	// MaxFrame caps frames in both directions (default protocol.DefaultMaxFrame).
	MaxFrame int
	// Retry is the redial backoff policy; its MaxAttempts bounds connect
	// attempts per call. Zero value means resilience.DefaultRetry(0) with
	// 5 attempts.
	Retry resilience.Retry
}

func (o *Options) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.HelloTimeout <= 0 {
		o.HelloTimeout = o.DialTimeout
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = protocol.DefaultMaxFrame
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = resilience.DefaultRetry(0)
		o.Retry.MaxAttempts = 5
	}
}

// Client is one pipelined connection to an autostatsd server.
type Client struct {
	addr string
	opts Options

	nextID atomic.Uint64
	closed atomic.Bool

	// mu guards the live connection and the redial path.
	mu   sync.Mutex
	conn *liveConn

	// Hello is the server's handshake from the most recent (re)connect.
	helloMu sync.Mutex
	hello   protocol.HelloResult
}

// liveConn is one established connection generation: writes serialize on
// wmu; the reader goroutine owns the read side and fails all pending waiters
// when the connection dies.
type liveConn struct {
	nc  net.Conn
	wmu sync.Mutex
	bw  *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]chan *protocol.Response
	err     error // set before dead is closed
	dead    chan struct{}
}

// Dial connects, performs the hello handshake, and returns a ready client.
func Dial(addr string, opts Options) (*Client, error) {
	opts.fill()
	c := &Client{addr: addr, opts: opts}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.connectLocked(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Hello returns the server handshake of the current connection generation.
func (c *Client) Hello() protocol.HelloResult {
	c.helloMu.Lock()
	defer c.helloMu.Unlock()
	return c.hello
}

// Close tears down the connection; all pending and future calls fail.
func (c *Client) Close() error {
	c.closed.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.fail(ErrClosed)
		c.conn = nil
	}
	return nil
}

// connectLocked dials and handshakes with backoff; c.mu must be held.
func (c *Client) connectLocked(ctx context.Context) (*liveConn, error) {
	var lastErr error
	sched := c.opts.Retry.Schedule()
	for attempt := 0; attempt <= len(sched); attempt++ {
		if attempt > 0 {
			t := time.NewTimer(sched[attempt-1])
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("client: connect %s: %w", c.addr, ctx.Err())
			}
		}
		if c.closed.Load() {
			return nil, ErrClosed
		}
		lc, hello, err := c.dialOnce(ctx)
		if err == nil {
			c.conn = lc
			c.helloMu.Lock()
			c.hello = *hello
			c.helloMu.Unlock()
			return lc, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: connect %s: %w", c.addr, lastErr)
}

func (c *Client) dialOnce(ctx context.Context) (*liveConn, *protocol.HelloResult, error) {
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, nil, err
	}
	lc := &liveConn{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 16<<10),
		pending: make(map[uint64]chan *protocol.Response),
		dead:    make(chan struct{}),
	}
	// Synchronous hello before the reader starts: a version-mismatched or
	// impostor server fails Dial, not the first real call. The deadline is
	// what bounds the handshake against an accept-and-stall listener.
	hreq := &protocol.Request{ID: c.nextID.Add(1), Op: protocol.OpHello,
		Version: protocol.Version, Tenant: c.opts.Tenant}
	nc.SetDeadline(time.Now().Add(c.opts.HelloTimeout))
	if err := protocol.WriteFrame(nc, hreq, c.opts.MaxFrame); err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("hello: %w", err)
	}
	hresp, err := protocol.ReadResponse(nc, c.opts.MaxFrame)
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("hello: %w", err)
	}
	if err := hresp.Err(); err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("hello rejected: %w", err)
	}
	if hresp.Hello == nil {
		nc.Close()
		return nil, nil, errors.New("hello response missing handshake")
	}
	nc.SetDeadline(time.Time{})
	go lc.readLoop(c.opts.MaxFrame)
	return lc, hresp.Hello, nil
}

// readLoop pairs responses to waiters by ID until the connection dies.
func (lc *liveConn) readLoop(maxFrame int) {
	br := bufio.NewReaderSize(lc.nc, 16<<10)
	for {
		resp, err := protocol.ReadResponse(br, maxFrame)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("client: connection closed by server: %w", err)
			}
			lc.fail(err)
			return
		}
		lc.pmu.Lock()
		ch := lc.pending[resp.ID]
		delete(lc.pending, resp.ID)
		lc.pmu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail marks the connection dead with err and wakes every waiter.
func (lc *liveConn) fail(err error) {
	lc.pmu.Lock()
	if lc.err == nil {
		lc.err = err
		close(lc.dead)
	}
	lc.pmu.Unlock()
	lc.nc.Close()
}

func (lc *liveConn) deadErr() error {
	lc.pmu.Lock()
	defer lc.pmu.Unlock()
	return lc.err
}

// register adds a waiter channel for id (buffered so the reader never blocks).
func (lc *liveConn) register(id uint64) chan *protocol.Response {
	ch := make(chan *protocol.Response, 1)
	lc.pmu.Lock()
	lc.pending[id] = ch
	lc.pmu.Unlock()
	return ch
}

func (lc *liveConn) unregister(id uint64) {
	lc.pmu.Lock()
	delete(lc.pending, id)
	lc.pmu.Unlock()
}

// getConn returns the live connection, redialing if the previous one died.
func (c *Client) getConn(ctx context.Context) (*liveConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if lc := c.conn; lc != nil && lc.deadErr() == nil {
		return lc, nil
	}
	c.conn = nil
	return c.connectLocked(ctx)
}

// do performs one pipelined round trip.
func (c *Client) do(ctx context.Context, req *protocol.Request) (*protocol.Response, error) {
	if c.opts.RequestTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
			defer cancel()
		}
	}
	lc, err := c.getConn(ctx)
	if err != nil {
		return nil, err
	}
	req.ID = c.nextID.Add(1)
	ch := lc.register(req.ID)

	lc.wmu.Lock()
	werr := protocol.WriteFrame(lc.bw, req, c.opts.MaxFrame)
	if werr == nil {
		werr = lc.bw.Flush()
	}
	lc.wmu.Unlock()
	if werr != nil {
		lc.unregister(req.ID)
		lc.fail(fmt.Errorf("client: write: %w", werr))
		// A failed write may still have put bytes on the wire; classify it as
		// in-flight loss so retry policy stays conservative.
		return nil, fmt.Errorf("%w: write: %v", ErrConnLost, werr)
	}

	select {
	case resp := <-ch:
		if err := resp.Err(); err != nil {
			return nil, err
		}
		return resp, nil
	case <-lc.dead:
		// The reader may have delivered our response in the same instant the
		// connection died; prefer the response.
		select {
		case resp := <-ch:
			if err := resp.Err(); err != nil {
				return nil, err
			}
			return resp, nil
		default:
		}
		lc.unregister(req.ID)
		derr := lc.deadErr()
		if errors.Is(derr, ErrClosed) {
			return nil, derr
		}
		return nil, fmt.Errorf("%w: %v", ErrConnLost, derr)
	case <-ctx.Done():
		lc.unregister(req.ID)
		return nil, ctx.Err()
	}
}

// doIdempotent is do plus one transparent retry on a fresh connection when
// the first attempt dies mid-flight. Only read-only operations (Explain,
// Stats, Metrics) route through here: re-running them changes nothing on
// the server, so replaying after an ambiguous failure is safe. Mutating
// operations call do directly and surface ErrConnLost to the caller.
func (c *Client) doIdempotent(ctx context.Context, req *protocol.Request) (*protocol.Response, error) {
	resp, err := c.do(ctx, req)
	if err == nil || !errors.Is(err, ErrConnLost) || c.closed.Load() {
		return resp, err
	}
	if ctx.Err() != nil {
		return nil, err
	}
	return c.do(ctx, req)
}

// Exec runs one SQL statement (query or DML) on the client's tenant.
// Never auto-retried: a connection lost mid-flight fails with ErrConnLost
// and the caller decides whether re-running the statement is safe.
func (c *Client) Exec(ctx context.Context, sql string) (*protocol.ExecResult, error) {
	resp, err := c.do(ctx, &protocol.Request{Op: protocol.OpExec, SQL: sql})
	if err != nil {
		return nil, err
	}
	if resp.Exec == nil {
		return nil, errors.New("client: exec response missing result")
	}
	return resp.Exec, nil
}

// Explain optimizes one SELECT and returns the pretty-printed plan.
// Read-only: retried once on a fresh connection if the first attempt is
// lost mid-flight.
func (c *Client) Explain(ctx context.Context, sql string) (string, error) {
	resp, err := c.doIdempotent(ctx, &protocol.Request{Op: protocol.OpExplain, SQL: sql})
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Tune runs the statistics tuner over a workload of SELECTs.
func (c *Client) Tune(ctx context.Context, sqls []string, opts *protocol.TuneParams) (*protocol.TuneResult, error) {
	resp, err := c.do(ctx, &protocol.Request{Op: protocol.OpTune, SQLs: sqls, Tune: opts})
	if err != nil {
		return nil, err
	}
	if resp.Tune == nil {
		return nil, errors.New("client: tune response missing result")
	}
	return resp.Tune, nil
}

// Stats lists the tenant's statistics. Read-only: retried once on a fresh
// connection if the first attempt is lost mid-flight.
func (c *Client) Stats(ctx context.Context) ([]protocol.StatRow, error) {
	resp, err := c.doIdempotent(ctx, &protocol.Request{Op: protocol.OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Maintain runs one maintenance pass on the tenant.
func (c *Client) Maintain(ctx context.Context) (*protocol.MaintResult, error) {
	resp, err := c.do(ctx, &protocol.Request{Op: protocol.OpMaintain})
	if err != nil {
		return nil, err
	}
	if resp.Maintain == nil {
		return nil, errors.New("client: maintain response missing result")
	}
	return resp.Maintain, nil
}

// Metrics fetches the server's metric registry as text lines. Read-only:
// retried once on a fresh connection if the first attempt is lost mid-flight.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, err := c.doIdempotent(ctx, &protocol.Request{Op: protocol.OpMetrics})
	if err != nil {
		return "", err
	}
	return resp.Metrics, nil
}
