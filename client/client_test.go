package client_test

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autostats"
	"autostats/client"
	"autostats/internal/protocol"
	"autostats/internal/resilience"
	"autostats/internal/server"
)

func tpcdFactory(string) (*autostats.System, error) {
	return autostats.GenerateTPCD(autostats.TPCDOptions{Scale: 0.02, Skew: 1})
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.NewTenant == nil {
		cfg.NewTenant = tpcdFactory
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestClientRoundTrips(t *testing.T) {
	s := startServer(t, server.Config{})
	c, err := client.Dial(s.Addr().String(), client.Options{Tenant: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if h := c.Hello(); h.Version != protocol.Version || h.Tenant != "t1" {
		t.Fatalf("hello %+v", h)
	}

	ctx := context.Background()
	res, err := c.Exec(ctx, "SELECT * FROM orders WHERE o_orderkey > 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	plan, err := c.Explain(ctx, "SELECT * FROM orders WHERE o_orderkey > 10")
	if err != nil || plan == "" {
		t.Fatalf("explain: %q, %v", plan, err)
	}
	if _, err := c.Tune(ctx,
		[]string{"SELECT * FROM lineitem, orders WHERE l_orderkey = o_orderkey AND l_quantity > 45"},
		nil); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no statistics after tune")
	}
	if _, err := c.Maintain(ctx); err != nil {
		t.Fatal(err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil || !strings.Contains(metrics, "server.requests.admitted") {
		t.Fatalf("metrics: %v\n%s", err, metrics)
	}
	// SQL errors carry the server's code, not a transport failure.
	if _, err := c.Exec(ctx, "SELECT junk FROM nowhere"); err == nil ||
		!strings.Contains(err.Error(), protocol.CodeSQL) {
		t.Fatalf("bad sql error: %v", err)
	}
}

func TestClientConcurrentPipelining(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4})
	c, err := client.Dial(s.Addr().String(), client.Options{Tenant: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := c.Exec(ctx, "SELECT * FROM orders WHERE o_orderkey > 10"); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientOverloadedError(t *testing.T) {
	// A factory that wedges until released turns the 1-worker, 1-slot server
	// into a deterministic overload generator.
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := startServer(t, server.Config{Workers: 1, QueueDepth: 1,
		NewTenant: func(string) (*autostats.System, error) {
			started <- struct{}{}
			<-release
			return nil, errors.New("wedged")
		}})

	c, err := client.Dial(s.Addr().String(), client.Options{Tenant: "w"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	results := make(chan error, 64)
	wg.Add(1)
	go func() { defer wg.Done(); results <- statErr(ctx, c) }()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never wedged")
	}
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); results <- statErr(ctx, c) }()
	}
	// With the lone worker wedged and the one queue slot taken, 19 of the 20
	// fast-fail; wait for them BEFORE releasing the wedge (the two wedged
	// calls cannot finish until it opens).
	deadline := time.Now().Add(15 * time.Second)
	for len(results) < 19 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)
	var overloaded int
	for err := range results {
		if errors.Is(err, protocol.ErrOverloaded) {
			overloaded++
		}
	}
	if overloaded == 0 {
		t.Fatal("no call surfaced protocol.ErrOverloaded")
	}
}

func statErr(ctx context.Context, c *client.Client) error {
	_, err := c.Stats(ctx)
	return err
}

func TestClientReconnect(t *testing.T) {
	s1 := startServer(t, server.Config{})
	addr := s1.Addr().String()
	c, err := client.Dial(addr, client.Options{Tenant: "r"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	if _, err := c.Exec(ctx, "SELECT * FROM orders WHERE o_orderkey > 10"); err != nil {
		t.Fatal(err)
	}

	// Kill the server; the in-flight generation dies, and because the next
	// dial attempt may race the port re-bind, the client's backoff schedule
	// absorbs the gap.
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Shutdown(sctx)
	cancel()
	s2 := startServer(t, server.Config{Addr: addr})
	_ = s2

	// The first call after the kill may see the dead generation's error;
	// a subsequent call must transparently redial.
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, err = c.Exec(ctx, "SELECT * FROM orders WHERE o_orderkey > 10")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reconnected: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClientClose(t *testing.T) {
	s := startServer(t, server.Config{})
	c, err := client.Dial(s.Addr().String(), client.Options{Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Exec(context.Background(), "SELECT 1"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestClientDialFailure(t *testing.T) {
	_, err := client.Dial("127.0.0.1:1", client.Options{
		Tenant: "x", DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("Dial to a dead port succeeded")
	}
}

// TestClientDialHelloTimeout is the regression test for Dial hanging against
// a listener that accepts the TCP connection but never reads: the
// synchronous hello must fail within HelloTimeout, not block forever.
func TestClientDialHelloTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			// Accept and stall: never read, never write.
			mu.Lock()
			conns = append(conns, nc)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, nc := range conns {
			nc.Close()
		}
	}()

	start := time.Now()
	_, err = client.Dial(ln.Addr().String(), client.Options{
		Tenant:       "stall",
		HelloTimeout: 150 * time.Millisecond,
		Retry:        resilience.Retry{MaxAttempts: 1},
	})
	if err == nil {
		t.Fatal("Dial against an accept-and-stall listener succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Dial blocked %v against a wedged listener", elapsed)
	}
}

// fakeStatsServer speaks just enough of the wire protocol for fault-injection
// tests: it answers hellos itself and hands every other request to handle,
// which may respond, stay silent, or kill the connection.
func fakeStatsServer(t *testing.T, handle func(nc net.Conn, req *protocol.Request)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					req, err := protocol.ReadRequest(br, protocol.DefaultMaxFrame)
					if err != nil {
						return
					}
					if req.Op == protocol.OpHello {
						protocol.WriteFrame(nc, &protocol.Response{ID: req.ID,
							Hello: &protocol.HelloResult{Version: protocol.Version, Tenant: req.Tenant},
						}, protocol.DefaultMaxFrame)
						continue
					}
					handle(nc, req)
				}
			}(nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestClientConnLostTypedAndExecNotReplayed checks both halves of the
// disconnect contract: an in-flight request fails with the typed ErrConnLost
// when the server vanishes mid-request, and a non-idempotent Exec is never
// silently replayed on the reconnect.
func TestClientConnLostTypedAndExecNotReplayed(t *testing.T) {
	var execs atomic.Int64
	ln := fakeStatsServer(t, func(nc net.Conn, req *protocol.Request) {
		if req.Op == protocol.OpExec {
			execs.Add(1)
			nc.Close() // die mid-request, no response
		}
	})
	c, err := client.Dial(ln.Addr().String(), client.Options{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Exec(context.Background(), "SELECT 1")
	if !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("err = %v, want ErrConnLost", err)
	}
	// Any erroneous replay would redial and resend; give it a moment to land.
	time.Sleep(100 * time.Millisecond)
	if n := execs.Load(); n != 1 {
		t.Fatalf("exec reached the server %d times; a lost connection must never replay it", n)
	}
}

// TestClientIdempotentRetriedAfterConnLoss checks that a read-only call lost
// mid-flight is transparently retried once on a fresh connection.
func TestClientIdempotentRetriedAfterConnLoss(t *testing.T) {
	var statsCalls atomic.Int64
	ln := fakeStatsServer(t, func(nc net.Conn, req *protocol.Request) {
		if req.Op != protocol.OpStats {
			return
		}
		if statsCalls.Add(1) == 1 {
			nc.Close() // first attempt dies mid-flight
			return
		}
		protocol.WriteFrame(nc, &protocol.Response{ID: req.ID,
			Stats: []protocol.StatRow{{Table: "orders", Columns: []string{"o_orderkey"}}},
		}, protocol.DefaultMaxFrame)
	})
	c, err := client.Dial(ln.Addr().String(), client.Options{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rows, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("idempotent stats not retried: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("stats rows = %d, want 1", len(rows))
	}
	if n := statsCalls.Load(); n != 2 {
		t.Fatalf("stats attempts = %d, want 2 (original + one retry)", n)
	}
}

// TestClientRequestTimeout checks that Options.RequestTimeout bounds calls
// whose contexts carry no deadline of their own.
func TestClientRequestTimeout(t *testing.T) {
	ln := fakeStatsServer(t, func(nc net.Conn, req *protocol.Request) {
		// Swallow the request: never respond, keep the connection open.
	})
	c, err := client.Dial(ln.Addr().String(), client.Options{
		Tenant: "t", RequestTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.Exec(context.Background(), "SELECT 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("call blocked %v with a 150ms request timeout", elapsed)
	}
}
