module autostats

go 1.22
