package autostats

import "testing"

// TestFeedbackFacade drives the whole loop through the public API: enable
// feedback, shift skew under the counter threshold, observe the q-error,
// and watch RunMaintenanceReport fire the feedback refresh.
func TestFeedbackFacade(t *testing.T) {
	sys, err := GenerateTPCD(TPCDOptions{Skew: 2, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateStatistic("lineitem", "l_quantity"); err != nil {
		t.Fatal(err)
	}
	sys.EnableFeedback(FeedbackOptions{})
	if !sys.FeedbackEnabled() {
		t.Fatal("FeedbackEnabled = false after EnableFeedback")
	}

	upd, err := sys.Exec("UPDATE lineitem SET l_quantity = 50 WHERE l_quantity > 1.5 AND l_quantity < 2.5")
	if err != nil {
		t.Fatal(err)
	}
	if upd.Affected == 0 {
		t.Fatal("skew-shift UPDATE affected no rows")
	}
	for i := 0; i < 2; i++ {
		if _, err := sys.Exec("SELECT l_orderkey FROM lineitem WHERE l_quantity > 45"); err != nil {
			t.Fatal(err)
		}
	}
	if fs := sys.FeedbackStats(); fs.Observations == 0 {
		t.Fatalf("no observations captured: %+v", fs)
	}
	entries := sys.FeedbackEntries()
	if len(entries) == 0 {
		t.Fatal("no ledger entries")
	}
	if e := entries[0]; e.Key.Table != "lineitem" || e.MaxQ <= 2 {
		t.Fatalf("worst entry = %+v, want lineitem with q-error above threshold", e)
	}

	rep, err := sys.RunMaintenanceReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TablesRefreshed != 0 {
		t.Errorf("row-mod counter fired: %+v", rep)
	}
	if rep.StatsFeedbackRefreshed < 1 {
		t.Errorf("no feedback refresh: %+v", rep)
	}

	sys.DisableFeedback()
	if sys.FeedbackEnabled() || sys.FeedbackEntries() != nil {
		t.Error("DisableFeedback left state attached")
	}
	if _, err := sys.Exec("SELECT l_orderkey FROM lineitem WHERE l_quantity > 45"); err != nil {
		t.Fatal(err)
	}
	if fs := sys.FeedbackStats(); fs.Observations != 0 {
		t.Errorf("capture still running after DisableFeedback: %+v", fs)
	}
}
